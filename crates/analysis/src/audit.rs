//! Pass 3 + orchestration: the audit entry points the `hermes audit` CLI
//! subcommand shells out to.
//!
//! [`audit_programs`] runs everything that needs only the workload: the
//! `hermes_dataplane` composition lints, the exhaustive per-program graph
//! cross-check, and the dataflow + recorded-edge passes over the merged
//! TDG. [`audit_instance`] adds the [`hermes_core::precheck`] bounds for a
//! concrete network and ε budget — the same certificates the portfolio
//! consumes to return proven-infeasible before burning wall clock.
//! [`audit_plan`] re-emits the plan verifier's violations as diagnostics
//! for auditing an already-computed deployment.
//!
//! Lints, certificates, and violations all carry their own stable codes
//! (`HL0xx`, `HC3xx`, `HV4xx`); this module only maps them onto the
//! [`Diagnostic`] shape and assigns severities.

use crate::dataflow::dataflow_diagnostics;
use crate::diag::{AuditReport, Diagnostic, Severity, Span};
use crate::graphcheck::{check_program, check_tdg};
use hermes_core::precheck::{Certificate, Precheck};
use hermes_core::verify::Violation;
use hermes_core::{DeploymentPlan, Epsilon};
use hermes_dataplane::lint::{lint_composition, Lint};
use hermes_dataplane::program::Program;
use hermes_net::Network;
use hermes_tdg::{merge_all, AnalysisMode, Tdg};

/// Re-renders a composition lint as a typed diagnostic.
pub fn lint_to_diagnostic(lint: &Lint) -> Diagnostic {
    let (severity, span, hint) = match lint {
        Lint::MetadataReadBeforeWrite { table, field } => (
            Severity::Error,
            Span::mat_field(table, field),
            "the field reads as zero on hardware; write it first or drop the match",
        ),
        Lint::MetadataNeverConsumed { table, field } => (
            Severity::Warning,
            Span::mat_field(table, field),
            "pure pipeline waste; the field also inflates A(a,b) when piggybacked",
        ),
        Lint::TableWithoutActions { table } => (
            Severity::Warning,
            Span::mat(table),
            "packets hit the table and nothing happens; add an action or remove it",
        ),
        Lint::RedundantGate { from, to } => (
            Severity::Info,
            Span::edge(from, to),
            "the data dependency already orders the pair; the gate adds nothing",
        ),
        Lint::OversizedCapacity { table, .. } => (
            Severity::Warning,
            Span::mat(table),
            "resources are billed by declared capacity; shrink C_a to what the rules need",
        ),
        Lint::DuplicateTableName { table, .. } => (
            Severity::Error,
            Span::mat(table),
            "structurally different same-named tables break merge bookkeeping; rename one",
        ),
        Lint::CrossProgramSharedWrite { field, first_table, second_table } => (
            Severity::Warning,
            Span {
                mat: Some(first_table.clone()),
                mat_to: Some(second_table.clone()),
                field: Some(field.clone()),
                program: None,
            },
            "the downstream program silently clobbers the upstream value; split the field",
        ),
        Lint::NonCommutativeMultiWriter { field, first_table, second_table } => (
            Severity::Warning,
            Span {
                mat: Some(first_table.clone()),
                mat_to: Some(second_table.clone()),
                field: Some(field.clone()),
                program: None,
            },
            "unify the writers on one fold kind to unlock commutative relaxation",
        ),
    };
    Diagnostic::new(lint.code(), severity, lint.to_string()).with_span(span).with_hint(hint)
}

/// Re-renders a pre-solve certificate as a diagnostic: infeasibility
/// proofs are errors, objective floors and relaxation notices are
/// informational.
pub fn certificate_to_diagnostic(cert: &Certificate) -> Diagnostic {
    if cert.is_infeasible() {
        Diagnostic::new(cert.code(), Severity::Error, cert.to_string())
            .with_hint("no search can find a plan; relax the eps budget or grow the network")
    } else if matches!(cert, Certificate::RelaxationApplied { .. }) {
        Diagnostic::new(cert.code(), Severity::Info, cert.to_string())
            .with_hint("relaxed edges carry no A(a,b) bytes; HV414 fires if one is unjustified")
    } else {
        Diagnostic::new(cert.code(), Severity::Info, cert.to_string())
            .with_hint("proven objective floor; a plan reaching it is optimal by construction")
    }
}

/// Re-renders a plan-verifier violation as an error diagnostic.
pub fn violation_to_diagnostic(violation: &Violation) -> Diagnostic {
    Diagnostic::new(violation.code(), Severity::Error, violation.to_string())
        .with_hint("the plan violates a hard constraint; it must not be installed")
}

/// Builds the merged workload TDG the way the deployment pipeline does:
/// per-program graphs, then pairwise merge with cross-program inference.
fn merged_tdg(programs: &[Program], mode: AnalysisMode) -> Tdg {
    merge_all(programs.iter().map(|p| Tdg::from_program(p, mode)).collect())
}

/// Audits a workload (no network needed): composition lints, exhaustive
/// per-program dependency re-derivation, and the dataflow + graph passes
/// over the merged TDG.
pub fn audit_programs(programs: &[Program], mode: AnalysisMode) -> AuditReport {
    let mut diags: Vec<Diagnostic> =
        lint_composition(programs).iter().map(lint_to_diagnostic).collect();
    for p in programs {
        diags.extend(check_program(p, mode));
    }
    let merged = merged_tdg(programs, mode);
    diags.extend(dataflow_diagnostics(&merged));
    diags.extend(check_tdg(&merged));
    AuditReport::new(diags, Vec::new())
}

/// Audits a full deployment instance: everything [`audit_programs`] does,
/// plus the pre-solve bounds for `net` and `eps`. The raw certificates
/// ride along in the report so callers can feed them to the portfolio (or
/// display the proofs) without re-deriving them.
pub fn audit_instance(
    programs: &[Program],
    net: &Network,
    eps: &Epsilon,
    mode: AnalysisMode,
) -> AuditReport {
    let base = audit_programs(programs, mode);
    let precheck = Precheck::run(&merged_tdg(programs, mode), net, eps);
    let mut diags = base.diagnostics;
    diags.extend(precheck.certificates.iter().map(certificate_to_diagnostic));
    AuditReport::new(diags, precheck.certificates)
}

/// Audits an already-computed deployment plan against its instance: the
/// full hard-constraint verifier, re-emitted as `HV4xx` diagnostics.
pub fn audit_plan(tdg: &Tdg, net: &Network, plan: &DeploymentPlan, eps: &Epsilon) -> AuditReport {
    let diags =
        hermes_core::verify(tdg, net, plan, eps).iter().map(violation_to_diagnostic).collect();
    AuditReport::new(diags, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::library;
    use hermes_dataplane::mat::{Mat, MatchKind};

    #[test]
    fn library_workload_audit_has_no_errors() {
        let programs = library::real_programs();
        let report = audit_programs(&programs, AnalysisMode::PaperLiteral);
        assert!(!report.has_errors(), "library workload should audit clean of errors: {report}");
    }

    #[test]
    fn broken_workload_surfaces_hl001_as_error() {
        let ghost = Field::metadata("meta.ghost", 4);
        let t = Mat::builder("r")
            .match_field(ghost, MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        let report = audit_programs(&[p], AnalysisMode::PaperLiteral);
        assert!(report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.code == "HL001"));
        // The dataflow pass independently reaches the same conclusion.
        assert!(report.diagnostics.iter().any(|d| d.code == "HD101"));
    }

    #[test]
    fn instance_audit_attaches_certificates() {
        let programs = library::real_programs();
        // One tiny switch cannot hold the whole library.
        let net = hermes_core::test_support::tiny_switches(1, 4, 0.05);
        let eps = Epsilon::loose();
        let report = audit_instance(&programs, &net, &eps, AnalysisMode::PaperLiteral);
        assert!(report.summary.proven_infeasible, "{report}");
        assert!(report.diagnostics.iter().any(|d| d.code == "HC303"));
        assert!(!report.certificates.is_empty());
        // And it all serializes.
        let json = report.to_json();
        assert!(json.contains("HC303"));
    }

    #[test]
    fn budget_certificates_surface_through_the_audit_json() {
        let programs = library::real_programs();
        // A deep, wide pipeline whose total-resource budget is the only
        // binding constraint: HC309 must fire instead of HC303.
        let mut net = hermes_core::test_support::tiny_switches(1, 64, 4.0);
        let id = net.switch_ids().next().unwrap();
        net.switch_mut(id).total_budget = 0.5;
        let eps = Epsilon::loose();
        let report = audit_instance(&programs, &net, &eps, AnalysisMode::PaperLiteral);
        assert!(report.summary.proven_infeasible, "{report}");
        assert!(report.diagnostics.iter().any(|d| d.code == "HC309"), "{report}");
        assert!(!report.diagnostics.iter().any(|d| d.code == "HC303"), "{report}");
        let json = report.to_json();
        assert!(json.contains("HC309"));
    }

    #[test]
    fn feasible_instance_audit_is_error_free() {
        let programs = vec![library::l3_router()];
        let net = hermes_net::topology::fat_tree(4, 0.5);
        let eps = Epsilon::loose();
        let report = audit_instance(&programs, &net, &eps, AnalysisMode::PaperLiteral);
        assert!(!report.has_errors(), "{report}");
        assert!(!report.summary.proven_infeasible);
    }
}
