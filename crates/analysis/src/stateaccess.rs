//! Pass 4 — state-access reporting: the naive classification oracle and
//! the `HS5xx` diagnostics behind `hermes audit --state-report`.
//!
//! [`hermes_tdg::stateaccess`] classifies fields in one linear pass over
//! interned accumulators; this module keeps [`oracle_classification`] — a
//! deliberately naive per-field rescan written from the lattice definition
//! rather than from the fast pass — pinned byte-identical to it by unit
//! and property tests (`tests/stateaccess_soundness.rs`). A divergence in
//! either direction is a bug in one of the two derivations.
//!
//! [`state_report`] renders the classification of a workload (the *merged*
//! TDG node set — classification is a property of the final workload) as a
//! serializable [`StateReport`], and [`state_diagnostics`] re-emits it
//! through the typed diagnostic model:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `HS501` | info | field is read-mostly replicable |
//! | `HS502` | info | field admits commutative split accumulation |
//! | `HS503` | warning | multi-writer field stays single-writer (mixed ops) |
//! | `HS504` | info | workload summary: relaxable fields / relaxed edges |

use crate::diag::{Diagnostic, Severity, Span};
use hermes_dataplane::action::{FoldOp, PrimitiveOp};
use hermes_dataplane::fields::Field;
use hermes_dataplane::program::Program;
use hermes_dataplane::Mat;
use hermes_tdg::{merge_all, AnalysisMode, StateClass, StateClassification, Tdg};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// The naive oracle.
// ---------------------------------------------------------------------

/// Every field the MAT set touches: match keys, action reads, and writes.
fn touched_fields(mats: &[&Mat]) -> BTreeSet<Field> {
    let mut out = BTreeSet::new();
    for m in mats {
        out.extend(m.match_fields());
        out.extend(m.action_read_fields());
        out.extend(m.written_fields());
    }
    out
}

/// All primitive ops across `mat` that write `field`.
fn writing_ops<'a>(mat: &'a Mat, field: &Field) -> Vec<&'a PrimitiveOp> {
    mat.actions().iter().flat_map(|a| a.ops()).filter(|op| op.writes().contains(&field)).collect()
}

/// The reference verdict for one field, recomputed from scratch with
/// straightforward set logic. Mirrors the lattice definition, not the
/// fast pass's accumulator plumbing.
fn oracle_verdict(field: &Field, mats: &[&Mat]) -> StateClass {
    let writers: Vec<&Mat> =
        mats.iter().copied().filter(|m| !writing_ops(m, field).is_empty()).collect();
    if writers.is_empty() {
        return StateClass::ReadOnly;
    }
    if field.is_metadata() {
        let ops: Vec<&PrimitiveOp> = writers.iter().flat_map(|m| writing_ops(m, field)).collect();

        // CommutativeUpdate: every write is a fold of one common kind whose
        // per-packet sources ride the packet (headers).
        let kinds: BTreeSet<FoldOp> = ops
            .iter()
            .filter_map(|op| match op {
                PrimitiveOp::Fold { op: k, .. } => Some(*k),
                _ => None,
            })
            .collect();
        let all_folds = ops.iter().all(|op| matches!(op, PrimitiveOp::Fold { .. }));
        let srcs_header_pure = ops.iter().all(|op| match op {
            PrimitiveOp::Fold { srcs, .. } => srcs.iter().all(Field::is_header),
            _ => true,
        });
        if all_folds && kinds.len() == 1 && srcs_header_pure {
            return StateClass::CommutativeUpdate(*kinds.iter().next().expect("len 1"));
        }

        // ReadMostlyReplicable: idempotent stateless header-pure writes,
        // header-matched producers, strictly more readers than writers.
        let writes_replicable = ops.iter().all(|op| {
            !op.is_stateful()
                && op.writes_are_idempotent()
                && op.reads().iter().all(|f| f.is_header())
        });
        let producers_header_matched =
            writers.iter().all(|m| m.match_fields().iter().all(Field::is_header));
        let readers = mats
            .iter()
            .filter(|m| {
                let mut consumed = m.match_fields();
                consumed.extend(m.action_read_fields());
                consumed.contains(field) && !m.written_fields().contains(field)
            })
            .count();
        if writes_replicable && producers_header_matched && readers > writers.len() {
            return StateClass::ReadMostlyReplicable;
        }
    }
    StateClass::SingleWriter
}

/// The naive set-based classification oracle: one verdict per touched
/// field, recomputed independently per field. Quadratic and proud of it —
/// its only job is to pin [`StateClassification::of_mats`] down.
pub fn oracle_classification<'a, I>(mats: I) -> BTreeMap<Field, StateClass>
where
    I: IntoIterator<Item = &'a Mat>,
{
    let mats: Vec<&Mat> = mats.into_iter().collect();
    touched_fields(&mats)
        .into_iter()
        .map(|f| {
            let class = oracle_verdict(&f, &mats);
            (f, class)
        })
        .collect()
}

// ---------------------------------------------------------------------
// The state report.
// ---------------------------------------------------------------------

/// One field's row in the state report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldReport {
    /// Field name.
    pub field: String,
    /// `"header"` or `"metadata"`.
    pub kind: String,
    /// Field width in bytes.
    pub bytes: u32,
    /// The verdict's display form (`commutative-update(add)` etc.).
    pub class: String,
    /// `true` when edges justified by this field may relax.
    pub relaxable: bool,
    /// Distinct MATs writing the field.
    pub writer_mats: usize,
    /// Distinct MATs consuming the field without writing it.
    pub reader_mats: usize,
}

/// The full state-access report of one workload, as `hermes audit
/// --state-report --json` emits it. Field order is lexicographic, so the
/// JSON is byte-reproducible and golden-diffable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateReport {
    /// The analysis mode the workload was analyzed under.
    pub mode: String,
    /// Per-field verdicts, sorted by field name.
    pub fields: Vec<FieldReport>,
    /// Count of fields classified.
    pub total_fields: usize,
    /// Count of fields with a relaxable verdict.
    pub relaxable_fields: usize,
    /// Edges of the merged TDG carrying a relaxed dependency type.
    pub relaxed_edges: usize,
    /// Total edges of the merged TDG.
    pub total_edges: usize,
}

impl StateReport {
    /// Deterministic pretty JSON.
    ///
    /// # Panics
    ///
    /// Never in practice: the report contains no non-serializable values.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("state reports serialize")
    }
}

/// Builds the state report for a workload: merges the per-program TDGs
/// the way the deployment pipeline does (classification is a property of
/// the final node set) and classifies every touched field.
pub fn state_report(programs: &[Program], mode: AnalysisMode) -> StateReport {
    let merged = merge_all(programs.iter().map(|p| Tdg::from_program(p, mode)).collect());
    state_report_of_tdg(&merged)
}

/// [`state_report`] over an already-built (typically merged) TDG.
pub fn state_report_of_tdg(tdg: &Tdg) -> StateReport {
    let class = StateClassification::of_mats(tdg.nodes().iter().map(|n| &n.mat));
    let fields: Vec<FieldReport> = class
        .verdicts()
        .map(|(f, e)| FieldReport {
            field: f.name().to_owned(),
            kind: if f.is_header() { "header".to_owned() } else { "metadata".to_owned() },
            bytes: f.size_bytes(),
            class: e.class.to_string(),
            relaxable: e.class.is_relaxable(),
            writer_mats: e.writer_mats,
            reader_mats: e.reader_mats,
        })
        .collect();
    let relaxable_fields = fields.iter().filter(|f| f.relaxable).count();
    StateReport {
        mode: format!("{:?}", tdg.mode()),
        total_fields: fields.len(),
        relaxable_fields,
        relaxed_edges: tdg.edges().iter().filter(|e| e.dep.is_relaxed()).count(),
        total_edges: tdg.edge_count(),
        fields,
    }
}

// ---------------------------------------------------------------------
// HS5xx diagnostics.
// ---------------------------------------------------------------------

/// Re-renders a state report as `HS5xx` diagnostics: one per relaxable
/// field, one per missed multi-writer field, plus the workload summary.
pub fn state_diagnostics(report: &StateReport) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &report.fields {
        if f.class == StateClass::ReadMostlyReplicable.to_string() {
            out.push(
                Diagnostic::new(
                    "HS501",
                    Severity::Info,
                    format!(
                        "`{}` is read-mostly replicable ({} writer(s), {} reader(s))",
                        f.field, f.writer_mats, f.reader_mats
                    ),
                )
                .with_span(Span::field(&f.field))
                .with_hint(
                    "consumers may replicate the producer locally instead of shipping the value",
                ),
            );
        } else if f.relaxable {
            out.push(
                Diagnostic::new(
                    "HS502",
                    Severity::Info,
                    format!("`{}` admits commutative split accumulation ({})", f.field, f.class),
                )
                .with_span(Span::field(&f.field))
                .with_hint(
                    "each switch may fold into an identity-initialized partial; order is free",
                ),
            );
        } else if f.kind == "metadata" && f.writer_mats >= 2 {
            out.push(
                Diagnostic::new(
                    "HS503",
                    Severity::Warning,
                    format!(
                        "`{}` has {} writers but stays single-writer ({})",
                        f.field, f.writer_mats, f.class
                    ),
                )
                .with_span(Span::field(&f.field))
                .with_hint("mixed or non-commutative write ops serialize every writer pair; unify the fold kind"),
            );
        }
    }
    out.push(
        Diagnostic::new(
            "HS504",
            Severity::Info,
            format!(
                "{} of {} fields relaxable; {} of {} dependency edges relaxed",
                report.relaxable_fields,
                report.total_fields,
                report.relaxed_edges,
                report.total_edges
            ),
        )
        .with_hint("run with relaxation enabled to let solvers exploit the relaxable fields"),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::library;

    /// Fast pass and oracle must agree field-for-field on a MAT set.
    fn assert_oracle_agrees(mats: &[&Mat]) {
        let fast = StateClassification::of_mats(mats.iter().copied());
        let slow = oracle_classification(mats.iter().copied());
        assert_eq!(fast.len(), slow.len(), "field sets diverge");
        for (f, e) in fast.verdicts() {
            assert_eq!(Some(&e.class), slow.get(f), "verdict diverges on `{}`", f.name());
        }
    }

    #[test]
    fn oracle_agrees_on_real_programs() {
        let programs = library::real_programs();
        let mats: Vec<&Mat> = programs.iter().flat_map(|p| p.tables()).collect();
        assert_oracle_agrees(&mats);
    }

    #[test]
    fn oracle_agrees_on_aggregation_suite() {
        for p in library::aggregation::all() {
            let mats: Vec<&Mat> = p.tables().iter().collect();
            assert_oracle_agrees(&mats);
        }
        // And on the whole suite composed, where cross-program writers can
        // demote per-program verdicts.
        let programs = library::aggregation::all();
        let mats: Vec<&Mat> = programs.iter().flat_map(|p| p.tables()).collect();
        assert_oracle_agrees(&mats);
    }

    #[test]
    fn state_report_rows_are_sorted_and_counted() {
        let report = state_report(&[library::aggregation::allreduce()], AnalysisMode::RelaxedState);
        assert_eq!(report.total_fields, report.fields.len());
        let names: Vec<&str> = report.fields.iter().map(|f| f.field.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "rows must come out in field order");
        assert!(report.relaxable_fields >= 1, "{report:?}");
        assert!(report.relaxed_edges >= 1, "{report:?}");
        // The JSON round-trips.
        let back: StateReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn conservative_report_relaxes_nothing() {
        let report = state_report(&[library::aggregation::allreduce()], AnalysisMode::PaperLiteral);
        assert_eq!(report.relaxed_edges, 0, "{report:?}");
        // Verdicts are mode-independent; only edge relaxation is gated.
        assert!(report.relaxable_fields >= 1);
    }

    #[test]
    fn hs_codes_cover_the_report() {
        let programs = library::aggregation::all();
        let report = state_report(&programs, AnalysisMode::RelaxedState);
        let diags = state_diagnostics(&report);
        let codes: BTreeSet<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        // The suite exercises replication (replicated_config), commutative
        // folds (allreduce/wordcount/telemetry), and a missed multi-writer
        // field is not guaranteed — but the summary always is.
        assert!(codes.contains("HS501"), "{codes:?}");
        assert!(codes.contains("HS502"), "{codes:?}");
        assert!(codes.contains("HS504"), "{codes:?}");
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn hs503_fires_on_mixed_fold_kinds() {
        use hermes_dataplane::mat::Mat;
        let acc = Field::metadata("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let mk = |name: &str, op: FoldOp| {
            Mat::builder(name.to_owned())
                .action(Action::new(format!("f_{name}")).with_op(PrimitiveOp::Fold {
                    dst: acc.clone(),
                    srcs: vec![src.clone()],
                    op,
                }))
                .resource(0.1)
                .build()
                .unwrap()
        };
        let p = Program::builder("p")
            .table(mk("a", FoldOp::Add))
            .table(mk("b", FoldOp::Max))
            .build()
            .unwrap();
        let report = state_report(&[p], AnalysisMode::RelaxedState);
        let diags = state_diagnostics(&report);
        assert!(diags.iter().any(|d| d.code == "HS503"), "{diags:?}");
        assert_eq!(report.relaxed_edges, 0);
    }
}
