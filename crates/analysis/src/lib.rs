//! Workload audit engine: static diagnostics over programs, TDGs, and
//! deployment instances, plus pre-solve infeasibility certificates.
//!
//! The crate hosts three analysis passes and the typed diagnostic model
//! they all emit through:
//!
//! 1. [`dataflow`] — read-before-write, dead-write/dead-MAT, unused-field
//!    and conflicting-write detection over the TDG, valid across *all*
//!    topological orders. Runs on bitsets with a naive `BTreeSet` oracle
//!    pinned to it by property tests.
//! 2. [`graphcheck`] — dependency-graph soundness: brute-force pairwise
//!    re-derivation of 𝕄/𝔸/ℝ/𝕊 edges cross-checked against the recorded
//!    graph, plus transitive-redundancy and strength-downgrade reporting.
//! 3. [`audit`] — the orchestrator: lints + dataflow + graph checks over a
//!    workload, and [`hermes_core::precheck`] certificates over a full
//!    deployment instance. The `hermes audit` CLI subcommand is a thin
//!    shell around [`audit::audit_instance`].
//! 4. [`stateaccess`] — the state-access report behind `hermes audit
//!    --state-report`: per-field replicability/commutativity verdicts
//!    (`HS5xx`), with a naive oracle pinned to the fast classifier in
//!    `hermes_tdg::stateaccess` by property tests.
//!
//! Every finding is a [`Diagnostic`] with a stable machine code (see
//! [`diag`] for the code-block table), so CI can golden-diff audit output
//! and editors can filter by code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod dataflow;
pub mod diag;
pub mod graphcheck;
pub mod stateaccess;

pub use audit::{audit_instance, audit_programs};
pub use dataflow::{dataflow_diagnostics, dataflow_reference};
pub use diag::{AuditReport, AuditSummary, Diagnostic, Severity, Span};
pub use graphcheck::{check_program, check_tdg};
pub use stateaccess::{
    oracle_classification, state_diagnostics, state_report, state_report_of_tdg, FieldReport,
    StateReport,
};
