//! Pass 2 — dependency-graph soundness and minimality.
//!
//! The solver trusts the TDG blindly: a missing edge lets it split a
//! dependent pair with no metadata accounting, a spurious or over-typed
//! edge inflates `A(a,b)` and drags the whole Pareto front upward. This
//! pass re-derives the ground truth from the MAT field sets with the
//! *reference* `classify`/`metadata_amount` functions — deliberately not
//! the bitset-profile twins `from_program` runs on — and cross-checks the
//! recorded graph against it.
//!
//! Two entry points:
//!
//! * [`check_program`] — exhaustive: rebuilds the full `i < j` pair set of
//!   one program (including its declared gates) and compares both
//!   directions, so a bug in either the profile path or the reference
//!   shows up as a divergence. Only well-defined per program, because
//!   merged graphs intentionally drop folded/cycle-closing edges.
//! * [`check_tdg`] — validates whatever graph it is given (typically the
//!   merged workload TDG) edge-by-edge: every recorded edge must re-derive
//!   (spurious / mistyped / misweighted edges are reported), plus
//!   transitive-redundancy and cycle reporting. Successor edges are exempt
//!   from type re-derivation — gates are declared, not derivable from
//!   field sets — but their `A(a,b)` is still checked.

use crate::diag::{Diagnostic, Severity, Span};
use hermes_dataplane::program::Program;
use hermes_tdg::{classify, metadata_amount, AnalysisMode, DependencyType, Tdg};
use std::collections::BTreeMap;

/// Paper precedence 𝕄 > 𝔸 > 𝕊 > ℝ as a comparable strength. Note the
/// derived `Ord` on [`DependencyType`] is declaration order, *not* this.
fn strength(dep: DependencyType) -> u8 {
    match dep {
        DependencyType::Match => 3,
        DependencyType::Action => 2,
        DependencyType::Successor => 1,
        DependencyType::ReverseMatch => 0,
        // Relaxed edges rank by the base type they were derived from.
        DependencyType::RelaxedMatch
        | DependencyType::RelaxedAction
        | DependencyType::RelaxedReverse => strength(dep.base()),
    }
}

// ---------------------------------------------------------------------
// Diagnostic constructors.
// ---------------------------------------------------------------------

fn missing_edge(from: &str, to: &str, dep: DependencyType) -> Diagnostic {
    Diagnostic::new(
        "HG201",
        Severity::Error,
        format!("derivable {dep} dependency `{from}` -> `{to}` is not in the recorded graph"),
    )
    .with_span(Span::edge(from, to))
    .with_hint("the solver may split this pair with no metadata accounting; rebuild the TDG")
}

fn spurious_edge(from: &str, to: &str, dep: DependencyType) -> Diagnostic {
    Diagnostic::new(
        "HG202",
        Severity::Error,
        format!("recorded {dep} edge `{from}` -> `{to}` has no derivable dependency"),
    )
    .with_span(Span::edge(from, to))
    .with_hint("a phantom edge inflates A_max and over-constrains stage ordering")
}

fn type_mismatch(
    from: &str,
    to: &str,
    recorded: DependencyType,
    derived: DependencyType,
) -> Diagnostic {
    Diagnostic::new(
        "HG203",
        Severity::Error,
        format!(
            "edge `{from}` -> `{to}` records type {recorded} but the field sets derive {derived}"
        ),
    )
    .with_span(Span::edge(from, to))
    .with_hint("the recorded type is not derivable; A(a,b) is computed from the wrong formula")
}

fn bytes_mismatch(from: &str, to: &str, recorded: u32, expected: u32) -> Diagnostic {
    Diagnostic::new(
        "HG204",
        Severity::Error,
        format!(
            "edge `{from}` -> `{to}` records A(a,b) = {recorded} B but Algorithm 1 gives \
             {expected} B"
        ),
    )
    .with_span(Span::edge(from, to))
    .with_hint("stale edge weights corrupt the objective; re-run reanalyze() after edits")
}

fn transitive_redundant(from: &str, to: &str, via: &str) -> Diagnostic {
    Diagnostic::new(
        "HG205",
        Severity::Info,
        format!("edge `{from}` -> `{to}` is transitively implied via `{via}`"),
    )
    .with_span(Span::edge(from, to))
    .with_hint("ordering is already forced; only its A(a,b) contribution is load-bearing")
}

fn type_downgrade(
    from: &str,
    to: &str,
    recorded: DependencyType,
    derived: DependencyType,
) -> Diagnostic {
    Diagnostic::new(
        "HG206",
        Severity::Warning,
        format!(
            "edge `{from}` -> `{to}` records {recorded} but the stronger {derived} is derivable"
        ),
    )
    .with_span(Span::edge(from, to))
    .with_hint("a weaker type undercounts A(a,b); the deployment may carry more bytes than planned")
}

fn cyclic_graph() -> Diagnostic {
    Diagnostic::new(
        "HG207",
        Severity::Error,
        "the dependency graph is cyclic; reachability checks skipped",
    )
    .with_hint("a TDG must be a DAG — check externally constructed edges")
}

// ---------------------------------------------------------------------
// check_program: exhaustive pairwise re-derivation.
// ---------------------------------------------------------------------

/// Re-derives every `i < j` pair of `program` with the reference
/// `classify`/`metadata_amount` and cross-checks `Tdg::from_program`'s
/// output (which runs on bitset profiles) in both directions.
///
/// A clean program yields no diagnostics; any divergence between the two
/// derivation paths — or a stale recorded edge — is an error.
pub fn check_program(program: &Program, mode: AnalysisMode) -> Vec<Diagnostic> {
    let tdg = Tdg::from_program(program, mode);
    let tables = program.tables();
    let gates: std::collections::BTreeSet<(usize, usize)> =
        program.gates().iter().copied().collect();

    let mut recorded: BTreeMap<(usize, usize), (DependencyType, u32)> = BTreeMap::new();
    for e in tdg.edges() {
        recorded.insert((e.from.index(), e.to.index()), (e.dep, e.bytes));
    }

    let name = |i: usize| tdg.nodes()[i].name.as_str();
    let mut out = Vec::new();
    for i in 0..tables.len() {
        for j in (i + 1)..tables.len() {
            let gated = gates.contains(&(i, j));
            let derived = classify(&tables[i], &tables[j], gated);
            match (derived, recorded.get(&(i, j))) {
                (None, None) => {}
                (Some(dep), None) => out.push(
                    missing_edge(name(i), name(j), dep)
                        .with_span(Span::edge(name(i), name(j)).in_program(program.name())),
                ),
                (None, Some(&(dep, _))) => out.push(
                    spurious_edge(name(i), name(j), dep)
                        .with_span(Span::edge(name(i), name(j)).in_program(program.name())),
                ),
                (Some(dep), Some(&(rec_dep, rec_bytes))) => {
                    // Relaxed edges must re-derive as their base type; the
                    // relaxation itself is certified by the plan verifier,
                    // not re-proved here.
                    if dep != rec_dep.base() {
                        out.push(
                            type_mismatch(name(i), name(j), rec_dep, dep)
                                .with_span(Span::edge(name(i), name(j)).in_program(program.name())),
                        );
                    }
                    let expected = metadata_amount(&tables[i], &tables[j], rec_dep, mode);
                    if expected != rec_bytes {
                        out.push(
                            bytes_mismatch(name(i), name(j), rec_bytes, expected)
                                .with_span(Span::edge(name(i), name(j)).in_program(program.name())),
                        );
                    }
                }
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------
// check_tdg: recorded-edge validation on arbitrary (e.g. merged) graphs.
// ---------------------------------------------------------------------

/// Validates every recorded edge of `tdg` against the reference analysis,
/// and reports transitive redundancy and cycles.
///
/// Unlike [`check_program`] this cannot prove edges *missing* — merged
/// graphs drop folded and cycle-closing edges by design — so it only
/// judges what is recorded.
pub fn check_tdg(tdg: &Tdg) -> Vec<Diagnostic> {
    let n = tdg.node_count();
    let mode = tdg.mode();
    let name = |i: usize| tdg.nodes()[i].name.as_str();
    let mut out = Vec::new();

    for e in tdg.edges() {
        let (u, v) = (e.from.index(), e.to.index());
        let (a, b) = (&tdg.nodes()[u].mat, &tdg.nodes()[v].mat);
        if e.dep != DependencyType::Successor {
            // A relaxed edge re-derives as its base type; whether the
            // relaxation is justified is the verifier's job (HV414).
            match classify(a, b, false) {
                None => out.push(spurious_edge(name(u), name(v), e.dep)),
                Some(derived) if derived != e.dep.base() => {
                    if strength(e.dep) < strength(derived) {
                        out.push(type_downgrade(name(u), name(v), e.dep, derived));
                    } else {
                        out.push(type_mismatch(name(u), name(v), e.dep, derived));
                    }
                }
                Some(_) => {}
            }
        }
        let expected = metadata_amount(a, b, e.dep, mode);
        if expected != e.bytes {
            out.push(bytes_mismatch(name(u), name(v), e.bytes, expected));
        }
    }

    let Some(order) = tdg.topo_order() else {
        out.push(cyclic_graph());
        out.sort();
        return out;
    };

    // Strict-descendant bitsets, reverse topological order.
    let words = n.div_ceil(64);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in tdg.edges() {
        succs[e.from.index()].push(e.to.index());
    }
    let mut desc: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    for id in order.iter().rev() {
        let u = id.index();
        let mut mine = std::mem::take(&mut desc[u]);
        for &s in &succs[u] {
            for (d, &w) in mine.iter_mut().zip(&desc[s]) {
                *d |= w;
            }
            mine[s / 64] |= 1u64 << (s % 64);
        }
        desc[u] = mine;
    }
    let reaches = |a: usize, b: usize| desc[a][b / 64] & (1u64 << (b % 64)) != 0;

    for e in tdg.edges() {
        let (u, v) = (e.from.index(), e.to.index());
        let via = succs[u].iter().copied().filter(|&w| w != v && reaches(w, v)).map(name).min();
        if let Some(via) = via {
            out.push(transitive_redundant(name(u), name(v), via));
        }
    }

    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::library;
    use hermes_dataplane::mat::{Mat, MatchKind};

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    fn writer(name: &str, f: &Field) -> Mat {
        Mat::builder(name.to_owned())
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap()
    }

    fn reader(name: &str, f: &Field) -> Mat {
        Mat::builder(name.to_owned())
            .match_field(f.clone(), MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn library_programs_cross_check_clean() {
        for p in library::real_programs() {
            for mode in [AnalysisMode::PaperLiteral, AnalysisMode::Intersection] {
                let diags = check_program(&p, mode);
                assert!(diags.is_empty(), "{}: {diags:?}", p.name());
            }
        }
    }

    #[test]
    fn library_merged_graph_validates() {
        let tdgs: Vec<Tdg> = library::real_programs()
            .iter()
            .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
            .collect();
        let merged = hermes_tdg::merge_all(tdgs);
        let diags = check_tdg(&merged);
        // Transitive-redundancy infos are expected (from_program records
        // every dependent pair); errors are not.
        assert!(diags.iter().all(|d| d.code == "HG205"), "unexpected non-HG205: {diags:?}");
    }

    #[test]
    fn spurious_edge_detected() {
        let f = meta("meta.x", 4);
        let g = meta("meta.y", 4);
        // w writes x, r reads y: no dependency, but record a Match edge.
        let tdg = Tdg::from_mats_and_edges(
            vec![("p/w".to_owned(), writer("w", &f)), ("p/r".to_owned(), reader("r", &g))],
            vec![(0, 1, DependencyType::Match)],
            AnalysisMode::PaperLiteral,
        );
        let diags = check_tdg(&tdg);
        assert!(diags.iter().any(|d| d.code == "HG202"), "{diags:?}");
    }

    #[test]
    fn type_downgrade_and_mismatch_detected() {
        let f = meta("meta.x", 4);
        // w -> r derives Match; record the weaker ReverseMatch -> HG206.
        let down = Tdg::from_mats_and_edges(
            vec![("p/w".to_owned(), writer("w", &f)), ("p/r".to_owned(), reader("r", &f))],
            vec![(0, 1, DependencyType::ReverseMatch)],
            AnalysisMode::PaperLiteral,
        );
        assert!(check_tdg(&down).iter().any(|d| d.code == "HG206"));
        // w1 -> w2 derives Action; record the stronger Match -> HG203.
        let up = Tdg::from_mats_and_edges(
            vec![("p/w1".to_owned(), writer("w1", &f)), ("p/w2".to_owned(), writer("w2", &f))],
            vec![(0, 1, DependencyType::Match)],
            AnalysisMode::PaperLiteral,
        );
        assert!(check_tdg(&up).iter().any(|d| d.code == "HG203"));
    }

    #[test]
    fn stale_bytes_detected() {
        let f = meta("meta.x", 4);
        let tdg = Tdg::from_mats_and_edges(
            vec![("p/w".to_owned(), writer("w", &f)), ("p/r".to_owned(), reader("r", &f))],
            vec![(0, 1, DependencyType::Match)],
            AnalysisMode::PaperLiteral,
        );
        // Force every edge weight to zero: the 4-byte Match edge goes stale.
        let stale = tdg.with_uniform_edge_bytes(0);
        assert!(check_tdg(&stale).iter().any(|d| d.code == "HG204"));
    }

    #[test]
    fn cycle_detected() {
        let f = meta("meta.x", 4);
        let g = meta("meta.y", 4);
        let a = Mat::builder("a")
            .match_field(g.clone(), MatchKind::Exact)
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let b = Mat::builder("b")
            .match_field(f.clone(), MatchKind::Exact)
            .action(Action::writing("w", [g.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let tdg = Tdg::from_mats_and_edges(
            vec![("p/a".to_owned(), a), ("p/b".to_owned(), b)],
            vec![(0, 1, DependencyType::Match), (1, 0, DependencyType::Match)],
            AnalysisMode::PaperLiteral,
        );
        assert!(check_tdg(&tdg).iter().any(|d| d.code == "HG207"));
    }

    #[test]
    fn transitive_redundant_edge_reported() {
        let f1 = meta("meta.a", 4);
        let f2 = meta("meta.b", 4);
        let t1 = writer("t1", &f1);
        let t2 = Mat::builder("t2")
            .match_field(f1.clone(), MatchKind::Exact)
            .action(Action::writing("w", [f2.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let t3 = Mat::builder("t3")
            .match_field(f1.clone(), MatchKind::Exact)
            .match_field(f2.clone(), MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap();
        let p =
            hermes_dataplane::Program::builder("p").table(t1).table(t2).table(t3).build().unwrap();
        let tdg = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        let diags = check_tdg(&tdg);
        // t1 -> t3 is implied via t2.
        assert!(
            diags.iter().any(|d| d.code == "HG205"
                && d.span.mat.as_deref() == Some("p/t1")
                && d.span.mat_to.as_deref() == Some("p/t3")),
            "{diags:?}"
        );
        // ...and the exhaustive per-program cross-check stays clean.
        assert!(check_program(&p, AnalysisMode::PaperLiteral).is_empty());
    }
}
