//! Pass 1 — dataflow over the TDG, valid across *all* topological orders.
//!
//! The deployment pipeline may execute the merged TDG in any
//! topological order (stage assignment only honours the recorded edges),
//! so a read is only safe when a writer is a strict *ancestor* — then
//! every legal order runs the write first. A writer that is merely
//! incomparable makes the read order-dependent; no writer at all (or
//! writers strictly downstream) means the field reads as zero on hardware
//! in every order.
//!
//! The same reachability machinery yields the write-side checks:
//! dead writes (no consumer can ever observe the value), dead MATs (every
//! effect is a dead metadata write), globally unused fields, and
//! conflicting writes (two incomparable writers — the final value depends
//! on the chosen order; the 𝔸 dependency type exists precisely to forbid
//! this).
//!
//! Two independent implementations back the pass:
//!
//! * [`dataflow_diagnostics`] — the production path, on PR-4 bitsets:
//!   per-node ancestor/descendant sets as `u64` words, fields interned in
//!   a [`FieldTable`] with [`FieldSet`] membership, `O((V + E) · V/64)`.
//! * [`dataflow_reference`] — the oracle, on `BTreeSet` and per-node DFS,
//!   written naively on purpose.
//!
//! Both must emit byte-identical diagnostics on every input; the
//! `audit_soundness` property suite pins them together on synthetic
//! workloads.

use crate::diag::{Diagnostic, Severity, Span};
use hermes_dataplane::fields::Field;
use hermes_dataplane::fieldset::{FieldSet, FieldTable};
use hermes_tdg::{DependencyType, Tdg};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// Shared diagnostic constructors: both implementations emit through these
// so their outputs are comparable byte-for-byte.
// ---------------------------------------------------------------------

fn cyclic_graph() -> Diagnostic {
    Diagnostic::new(
        "HD100",
        Severity::Error,
        "the dependency graph is cyclic; dataflow analysis skipped",
    )
    .with_hint("a TDG must be a DAG — check externally constructed edges")
}

fn uninitialized_read(mat: &str, field: &str) -> Diagnostic {
    Diagnostic::new(
        "HD101",
        Severity::Error,
        format!("`{mat}` consumes metadata `{field}` with no upstream writer in any order"),
    )
    .with_span(Span::mat_field(mat, field))
    .with_hint("the field reads as zero on hardware; add or order a producer before this MAT")
}

fn order_dependent_read(mat: &str, field: &str, writer: &str) -> Diagnostic {
    Diagnostic::new(
        "HD102",
        Severity::Warning,
        format!(
            "`{mat}` consumes metadata `{field}` whose only writers (e.g. `{writer}`) are \
             unordered relative to it"
        ),
    )
    .with_span(Span::mat_field(mat, field))
    .with_hint("some topological orders run the read first; add a dependency or gate")
}

fn dead_write(mat: &str, field: &str) -> Diagnostic {
    Diagnostic::new(
        "HD103",
        Severity::Warning,
        format!("`{mat}` writes metadata `{field}` that no later MAT can observe"),
    )
    .with_span(Span::mat_field(mat, field))
    .with_hint("drop the write, or the field inflates A(a,b) for nothing when piggybacked")
}

fn dead_mat(mat: &str) -> Diagnostic {
    Diagnostic::new(
        "HD104",
        Severity::Warning,
        format!("`{mat}` only produces metadata that nothing can observe — the MAT is dead"),
    )
    .with_span(Span::mat(mat))
    .with_hint("remove the MAT; it consumes stages and resources without effect")
}

fn unused_field(field: &str) -> Diagnostic {
    Diagnostic::new(
        "HD105",
        Severity::Info,
        format!("metadata `{field}` is written but never consumed anywhere"),
    )
    .with_span(Span::field(field))
    .with_hint("delete the field to shrink the metadata the deployment may have to carry")
}

fn conflicting_writes(first: &str, second: &str, field: &str) -> Diagnostic {
    Diagnostic::new(
        "HD106",
        Severity::Warning,
        format!(
            "`{first}` and `{second}` both write metadata `{field}` with no ordering between \
             them — the final value depends on the chosen topological order"
        ),
    )
    .with_span(Span {
        mat: Some(first.to_owned()),
        mat_to: Some(second.to_owned()),
        field: Some(field.to_owned()),
        program: None,
    })
    .with_hint("an A-type dependency should order the writers; check the edge inference inputs")
}

/// Name-ordered pair, so both implementations report one canonical
/// orientation per conflicting writer pair.
fn name_ordered<'a>(a: &'a str, b: &'a str) -> (&'a str, &'a str) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

// ---------------------------------------------------------------------
// Production implementation: bitsets.
// ---------------------------------------------------------------------

/// Word-bitset over node indexes.
type NodeBits = Vec<u64>;

fn bit_set(bits: &mut NodeBits, i: usize) {
    bits[i / 64] |= 1u64 << (i % 64);
}

fn bit_get(bits: &NodeBits, i: usize) -> bool {
    bits[i / 64] & (1u64 << (i % 64)) != 0
}

fn bits_or(dst: &mut NodeBits, src: &NodeBits) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Runs the dataflow pass on bitsets (the production path).
///
/// Returns one diagnostic per finding, sorted; `HD100` alone when the
/// graph is cyclic.
pub fn dataflow_diagnostics(tdg: &Tdg) -> Vec<Diagnostic> {
    let n = tdg.node_count();
    if n == 0 {
        return Vec::new();
    }
    let Some(order) = tdg.topo_order() else {
        return vec![cyclic_graph()];
    };
    let words = n.div_ceil(64);

    // Dense adjacency once — `in_edges`/`out_edges` are linear scans.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut gates_out = vec![false; n];
    for e in tdg.edges() {
        preds[e.to.index()].push(e.from.index());
        succs[e.from.index()].push(e.to.index());
        if e.dep == DependencyType::Successor {
            gates_out[e.from.index()] = true;
        }
    }

    // Strict ancestors per node, in topological order.
    let mut anc: Vec<NodeBits> = vec![vec![0u64; words]; n];
    for id in &order {
        let v = id.index();
        // Split-borrow via std::mem::take: anc[p] is final once p precedes
        // v in topo order.
        let mut mine = std::mem::take(&mut anc[v]);
        for &p in &preds[v] {
            bits_or(&mut mine, &anc[p]);
            bit_set(&mut mine, p);
        }
        anc[v] = mine;
    }
    // Strict descendants, in reverse topological order.
    let mut desc: Vec<NodeBits> = vec![vec![0u64; words]; n];
    for id in order.iter().rev() {
        let u = id.index();
        let mut mine = std::mem::take(&mut desc[u]);
        for &s in &succs[u] {
            bits_or(&mut mine, &desc[s]);
            bit_set(&mut mine, s);
        }
        desc[u] = mine;
    }
    let is_anc = |a: usize, b: usize| bit_get(&anc[b], a);

    // Field universe: consumed/written metadata as interned bitsets.
    // `fids[i]` is the id with dense index `i` (ids are handed out in
    // first-encounter order), so we can go from a raw index back to a
    // `FieldId` for table lookups.
    let mut ft = FieldTable::new();
    let mut fids: Vec<hermes_dataplane::FieldId> = Vec::new();
    let mut consumed: Vec<FieldSet> = Vec::with_capacity(n);
    let mut written: Vec<FieldSet> = Vec::with_capacity(n);
    for node in tdg.nodes() {
        let mut intern = |f: &Field, fids: &mut Vec<hermes_dataplane::FieldId>| {
            let id = ft.intern(f);
            if id.index() == fids.len() {
                fids.push(id);
            }
            id
        };
        let mut c = FieldSet::new();
        for f in node
            .mat
            .match_fields()
            .into_iter()
            .chain(node.mat.action_read_fields())
            .filter(Field::is_metadata)
        {
            c.insert(intern(&f, &mut fids));
        }
        let mut w = FieldSet::new();
        for f in node.mat.written_metadata() {
            w.insert(intern(&f, &mut fids));
        }
        consumed.push(c);
        written.push(w);
    }
    let field_count = ft.len();
    let mut writers: Vec<Vec<usize>> = vec![Vec::new(); field_count];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); field_count];
    for v in 0..n {
        for id in written[v].iter() {
            writers[id.index()].push(v);
        }
        for id in consumed[v].iter() {
            readers[id.index()].push(v);
        }
    }
    let name = |v: usize| tdg.nodes()[v].name.as_str();

    let mut out = Vec::new();

    // Reads: HD101 / HD102.
    for b in 0..n {
        for id in consumed[b].iter() {
            if written[b].contains(id) {
                continue; // self-produced (hash + use) is fine
            }
            let ws = &writers[id.index()];
            if ws.iter().any(|&w| is_anc(w, b)) {
                continue;
            }
            let witness = ws.iter().copied().filter(|&w| w != b && !is_anc(b, w)).map(name).min();
            let field = ft.field(id).name();
            match witness {
                Some(w) => out.push(order_dependent_read(name(b), field, w)),
                None => out.push(uninitialized_read(name(b), field)),
            }
        }
    }

    // Writes: HD103 / HD104 / HD106; fields: HD105.
    let mut field_dead: Vec<Vec<usize>> = vec![Vec::new(); n]; // node -> dead field ids
    for a in 0..n {
        for id in written[a].iter() {
            let alive = consumed[a].contains(id)
                || readers[id.index()].iter().any(|&r| r != a && !is_anc(r, a));
            if !alive {
                field_dead[a].push(id.index());
            }
        }
    }
    for a in 0..n {
        let node = &tdg.nodes()[a];
        let all_meta = !node.mat.written_fields().is_empty()
            && node.mat.written_fields().iter().all(Field::is_metadata);
        let every_write_dead = field_dead[a].len() == written[a].len();
        if all_meta && every_write_dead && !node.mat.is_stateful() && !gates_out[a] {
            out.push(dead_mat(name(a)));
        } else {
            for &fid in &field_dead[a] {
                out.push(dead_write(name(a), ft.field(fids[fid]).name()));
            }
        }
    }
    for fid in 0..field_count {
        if !writers[fid].is_empty() && readers[fid].is_empty() {
            out.push(unused_field(ft.field(fids[fid]).name()));
        }
    }
    for fid in 0..field_count {
        let ws = &writers[fid];
        for (i, &a) in ws.iter().enumerate() {
            for &b in &ws[i + 1..] {
                if !is_anc(a, b) && !is_anc(b, a) {
                    let (x, y) = name_ordered(name(a), name(b));
                    out.push(conflicting_writes(x, y, ft.field(fids[fid]).name()));
                }
            }
        }
    }

    out.sort();
    out
}

// ---------------------------------------------------------------------
// Reference oracle: BTreeSet + per-node DFS, written naively on purpose.
// ---------------------------------------------------------------------

/// Runs the dataflow pass on `BTreeSet`s (the reference oracle).
///
/// Must emit exactly what [`dataflow_diagnostics`] emits on every input —
/// the property suite enforces it.
pub fn dataflow_reference(tdg: &Tdg) -> Vec<Diagnostic> {
    let n = tdg.node_count();
    if n == 0 {
        return Vec::new();
    }
    if tdg.topo_order().is_none() {
        return vec![cyclic_graph()];
    }

    // reachable[a] = strict descendants of a, by DFS over out-edges.
    let mut reachable: Vec<BTreeSet<usize>> = Vec::with_capacity(n);
    for start in tdg.node_ids() {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<_> = tdg.out_edges(start).map(|e| e.to).collect();
        while let Some(v) = stack.pop() {
            if seen.insert(v.index()) {
                stack.extend(tdg.out_edges(v).map(|e| e.to));
            }
        }
        reachable.push(seen);
    }
    let is_anc = |a: usize, b: usize| reachable[a].contains(&b);

    let consumed: Vec<BTreeSet<Field>> = tdg
        .nodes()
        .iter()
        .map(|node| {
            let mut c = node.mat.match_fields();
            c.extend(node.mat.action_read_fields());
            c.into_iter().filter(Field::is_metadata).collect()
        })
        .collect();
    let written: Vec<BTreeSet<Field>> =
        tdg.nodes().iter().map(|node| node.mat.written_metadata()).collect();

    let mut writers: BTreeMap<&Field, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<&Field, Vec<usize>> = BTreeMap::new();
    for v in 0..n {
        for f in &written[v] {
            writers.entry(f).or_default().push(v);
        }
        for f in &consumed[v] {
            readers.entry(f).or_default().push(v);
        }
    }
    let empty: Vec<usize> = Vec::new();
    let name = |v: usize| tdg.nodes()[v].name.as_str();

    let mut out = Vec::new();

    for b in 0..n {
        for f in &consumed[b] {
            if written[b].contains(f) {
                continue;
            }
            let ws = writers.get(f).unwrap_or(&empty);
            if ws.iter().any(|&w| is_anc(w, b)) {
                continue;
            }
            let witness = ws.iter().copied().filter(|&w| w != b && !is_anc(b, w)).map(name).min();
            match witness {
                Some(w) => out.push(order_dependent_read(name(b), f.name(), w)),
                None => out.push(uninitialized_read(name(b), f.name())),
            }
        }
    }

    let mut dead: Vec<Vec<&Field>> = vec![Vec::new(); n];
    for a in 0..n {
        for f in &written[a] {
            let rs = readers.get(f).unwrap_or(&empty);
            let alive = consumed[a].contains(f) || rs.iter().any(|&r| r != a && !is_anc(r, a));
            if !alive {
                dead[a].push(f);
            }
        }
    }
    for a in 0..n {
        let mat = &tdg.nodes()[a].mat;
        let all_meta =
            !mat.written_fields().is_empty() && mat.written_fields().iter().all(Field::is_metadata);
        let gates = tdg
            .node_ids()
            .nth(a)
            .map(|id| tdg.out_edges(id).any(|e| e.dep == DependencyType::Successor))
            .unwrap_or(false);
        if all_meta && dead[a].len() == written[a].len() && !mat.is_stateful() && !gates {
            out.push(dead_mat(name(a)));
        } else {
            for f in &dead[a] {
                out.push(dead_write(name(a), f.name()));
            }
        }
    }
    for (f, ws) in &writers {
        if !ws.is_empty() && !readers.contains_key(*f) {
            out.push(unused_field(f.name()));
        }
    }
    for (f, ws) in &writers {
        for (i, &a) in ws.iter().enumerate() {
            for &b in &ws[i + 1..] {
                if !is_anc(a, b) && !is_anc(b, a) {
                    let (x, y) = name_ordered(name(a), name(b));
                    out.push(conflicting_writes(x, y, f.name()));
                }
            }
        }
    }

    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_tdg::AnalysisMode;

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    fn writer(name: &str, f: &Field) -> Mat {
        Mat::builder(name.to_owned())
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap()
    }

    fn reader(name: &str, f: &Field) -> Mat {
        Mat::builder(name.to_owned())
            .match_field(f.clone(), MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap()
    }

    fn tdg_of(p: &Program) -> Tdg {
        Tdg::from_program(p, AnalysisMode::PaperLiteral)
    }

    fn both(tdg: &Tdg) -> Vec<Diagnostic> {
        let fast = dataflow_diagnostics(tdg);
        let oracle = dataflow_reference(tdg);
        assert_eq!(fast, oracle, "bitset pass diverges from the oracle");
        fast
    }

    #[test]
    fn ordered_write_then_read_is_clean() {
        let f = meta("meta.x", 4);
        let p =
            Program::builder("p").table(writer("w", &f)).table(reader("r", &f)).build().unwrap();
        let diags = both(&tdg_of(&p));
        assert!(!diags.iter().any(|d| d.code == "HD101" || d.code == "HD102"), "{diags:?}");
    }

    #[test]
    fn missing_writer_is_uninitialized_read() {
        let f = meta("meta.ghost", 4);
        let p = Program::builder("p").table(reader("r", &f)).build().unwrap();
        let diags = both(&tdg_of(&p));
        assert!(diags.iter().any(|d| d.code == "HD101"), "{diags:?}");
    }

    #[test]
    fn downstream_only_writer_is_still_uninitialized() {
        // r reads meta.x, w writes it *after* (ReverseMatch edge r -> w):
        // in every topological order the read runs first.
        let f = meta("meta.x", 4);
        let p =
            Program::builder("p").table(reader("r", &f)).table(writer("w", &f)).build().unwrap();
        let diags = both(&tdg_of(&p));
        assert!(diags.iter().any(|d| d.code == "HD101"), "{diags:?}");
    }

    #[test]
    fn incomparable_writer_is_order_dependent() {
        // Writer and reader in two separate components of one merged
        // graph: build a TDG by hand with no edges.
        let f = meta("meta.x", 4);
        let tdg = Tdg::from_mats_and_edges(
            vec![("a/w".to_owned(), writer("w", &f)), ("b/r".to_owned(), reader("r", &f))],
            Vec::new(),
            AnalysisMode::PaperLiteral,
        );
        let diags = both(&tdg);
        assert!(diags.iter().any(|d| d.code == "HD102"), "{diags:?}");
    }

    #[test]
    fn dead_write_and_dead_mat_detected() {
        let f = meta("meta.waste", 4);
        let g = meta("meta.used", 2);
        // `wboth` writes a used and a wasted field -> HD103 on the wasted
        // one; `wdead` only writes waste -> HD104 (and no HD103 for it).
        let wboth = Mat::builder("wboth")
            .action(Action::writing("w", [f.clone(), g.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let wdead = Mat::builder("wdead")
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let p =
            Program::builder("p").table(wboth).table(wdead).table(reader("r", &g)).build().unwrap();
        let diags = both(&tdg_of(&p));
        assert!(
            diags.iter().any(|d| d.code == "HD103" && d.span.mat.as_deref() == Some("p/wboth")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.code == "HD104" && d.span.mat.as_deref() == Some("p/wdead")),
            "{diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.code == "HD103" && d.span.mat.as_deref() == Some("p/wdead")),
            "dead MAT suppresses its per-field dead writes: {diags:?}"
        );
        // meta.waste is written but never consumed anywhere -> HD105.
        assert!(
            diags
                .iter()
                .any(|d| d.code == "HD105" && d.span.field.as_deref() == Some("meta.waste")),
            "{diags:?}"
        );
    }

    #[test]
    fn conflicting_incomparable_writers_detected() {
        let f = meta("meta.x", 4);
        let r = reader("r", &f);
        let tdg = Tdg::from_mats_and_edges(
            vec![
                ("a/w1".to_owned(), writer("w1", &f)),
                ("b/w2".to_owned(), writer("w2", &f)),
                ("c/r".to_owned(), r),
            ],
            Vec::new(),
            AnalysisMode::PaperLiteral,
        );
        let diags = both(&tdg);
        assert!(diags.iter().any(|d| d.code == "HD106"), "{diags:?}");
    }

    #[test]
    fn stateful_mat_is_never_dead() {
        // A register write has externally visible state even if its
        // metadata output is unread.
        let idx = meta("meta.idx", 4);
        let t = Mat::builder("reg")
            .action(
                Action::new("a")
                    .with_op(hermes_dataplane::action::PrimitiveOp::Hash {
                        dst: idx.clone(),
                        srcs: vec![],
                    })
                    .with_op(hermes_dataplane::action::PrimitiveOp::RegisterOp {
                        index: idx,
                        out: None,
                    }),
            )
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        let diags = both(&tdg_of(&p));
        assert!(!diags.iter().any(|d| d.code == "HD104"), "{diags:?}");
    }

    #[test]
    fn empty_tdg_is_clean() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        assert!(both(&tdg).is_empty());
    }

    #[test]
    fn library_merge_has_no_uninitialized_reads() {
        let tdgs: Vec<Tdg> = hermes_dataplane::library::real_programs()
            .iter()
            .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
            .collect();
        let merged = hermes_tdg::merge_all(tdgs);
        let diags = both(&merged);
        assert!(!diags.iter().any(|d| d.code == "HD101"), "{diags:?}");
    }
}
