//! The typed diagnostic model: machine-readable findings with stable
//! codes, severities, spans, and fix hints.
//!
//! Every analysis pass in this crate — and the re-emitted `dataplane`
//! lints, `core` verifier violations, and precheck certificates — reduces
//! to a [`Diagnostic`]. The code blocks are fixed for the lifetime of the
//! tool so external tooling (CI golden snapshots, editors) can filter on
//! them:
//!
//! | block   | source                                         |
//! |---------|------------------------------------------------|
//! | `HL0xx` | program lints (`hermes_dataplane::lint`)       |
//! | `HD1xx` | TDG dataflow pass (`crate::dataflow`)          |
//! | `HG2xx` | dependency-graph soundness (`crate::graphcheck`)|
//! | `HC3xx` | pre-solve certificates (`hermes_core::precheck`)|
//! | `HV4xx` | plan verifier (`hermes_core::verify`)          |
//! | `HS5xx` | state-access report (`crate::stateaccess`)     |

use crate::stateaccess::StateReport;
use hermes_core::precheck::Certificate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is. The derived order is `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory: a simplification or optimization opportunity.
    Info,
    /// Suspicious but deployable; behaviour may not match intent.
    Warning,
    /// The workload or instance is broken; deployment should not proceed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a finding points: any combination of program, MAT (plus a second
/// MAT for edge findings), and field. All-`None` means workload-global.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Owning program name.
    pub program: Option<String>,
    /// Primary MAT (program-qualified where the pass works on merged
    /// graphs).
    pub mat: Option<String>,
    /// Second MAT for edge/pair findings (`mat -> mat_to`).
    pub mat_to: Option<String>,
    /// The field involved.
    pub field: Option<String>,
}

impl Span {
    /// A MAT-level span.
    pub fn mat(name: impl Into<String>) -> Self {
        Span { mat: Some(name.into()), ..Span::default() }
    }

    /// A MAT + field span.
    pub fn mat_field(mat: impl Into<String>, field: impl Into<String>) -> Self {
        Span { mat: Some(mat.into()), field: Some(field.into()), ..Span::default() }
    }

    /// An edge (`from -> to`) span.
    pub fn edge(from: impl Into<String>, to: impl Into<String>) -> Self {
        Span { mat: Some(from.into()), mat_to: Some(to.into()), ..Span::default() }
    }

    /// A field-only span.
    pub fn field(name: impl Into<String>) -> Self {
        Span { field: Some(name.into()), ..Span::default() }
    }

    /// Attaches the owning program.
    pub fn in_program(mut self, program: impl Into<String>) -> Self {
        self.program = Some(program.into());
        self
    }

    /// `true` when the span carries no location at all.
    pub fn is_empty(&self) -> bool {
        self.program.is_none()
            && self.mat.is_none()
            && self.mat_to.is_none()
            && self.field.is_none()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(p) = &self.program {
            write!(f, "{p}")?;
            wrote = true;
        }
        if let Some(m) = &self.mat {
            if wrote {
                f.write_str("/")?;
            }
            write!(f, "{m}")?;
            wrote = true;
        }
        if let Some(t) = &self.mat_to {
            write!(f, " -> {t}")?;
            wrote = true;
        }
        if let Some(fd) = &self.field {
            if wrote {
                f.write_str(" ")?;
            }
            write!(f, "[{fd}]")?;
        }
        Ok(())
    }
}

/// One finding: a stable code, a severity, a human message, a span, and an
/// optional fix hint. Sort order (derived) is code-first, which groups
/// findings by kind and keeps reports deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine code (e.g. `HD101`); see the module table.
    pub code: String,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable one-liner.
    pub message: String,
    /// Where the finding points.
    pub span: Span,
    /// How to fix it, when the pass knows.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with an empty span and no hint.
    pub fn new(code: &str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.to_owned(),
            severity,
            message: message.into(),
            span: Span::default(),
            hint: None,
        }
    }

    /// Sets the span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Sets the fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.span.is_empty() {
            write!(f, " (at {})", self.span)?;
        }
        if let Some(h) = &self.hint {
            write!(f, "\n  hint: {h}")?;
        }
        Ok(())
    }
}

/// Aggregate counts of one audit run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Error-severity diagnostics.
    pub errors: usize,
    /// Warning-severity diagnostics.
    pub warnings: usize,
    /// Info-severity diagnostics.
    pub infos: usize,
    /// Pre-solve certificates attached (infeasibility proofs and floors).
    pub certificates: usize,
    /// `true` when a certificate proves the instance infeasible.
    pub proven_infeasible: bool,
}

/// The complete result of an audit: sorted diagnostics, the raw precheck
/// certificates (proof objects, not just their diagnostic rendering), and
/// a summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// All findings, sorted by (code, severity, span, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Pre-solve certificates (empty when no instance was audited).
    pub certificates: Vec<Certificate>,
    /// Aggregate counts.
    pub summary: AuditSummary,
    /// The per-field state-access report, when the audit ran with
    /// `--state-report`. Absent otherwise, and omitted from JSON so
    /// reports without it stay byte-identical to older snapshots.
    pub state: Option<StateReport>,
}

// Hand-written (rather than derived) so an absent state report is omitted
// from the JSON instead of serialized as `"state": null` — existing report
// snapshots must not change shape when the feature is off.
impl Serialize for AuditReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("diagnostics".to_owned(), self.diagnostics.to_value()),
            ("certificates".to_owned(), self.certificates.to_value()),
            ("summary".to_owned(), self.summary.to_value()),
        ];
        if let Some(state) = &self.state {
            fields.push(("state".to_owned(), state.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for AuditReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(AuditReport {
            diagnostics: Deserialize::from_value(v.get_field("diagnostics")?)?,
            certificates: Deserialize::from_value(v.get_field("certificates")?)?,
            summary: Deserialize::from_value(v.get_field("summary")?)?,
            state: match v.get_field("state") {
                Ok(sv) => Some(Deserialize::from_value(sv)?),
                Err(_) => None,
            },
        })
    }
}

impl AuditReport {
    /// Builds a report: stable-sorts the diagnostics keyed by
    /// `(code, span)` first — so findings group by kind and then by
    /// location, independently of message wording — with the remaining
    /// fields as tie-breakers for full byte-determinism, then dedups.
    pub fn new(mut diagnostics: Vec<Diagnostic>, certificates: Vec<Certificate>) -> Self {
        diagnostics.sort_by(|a, b| {
            (&a.code, &a.span, a.severity, &a.message, &a.hint)
                .cmp(&(&b.code, &b.span, b.severity, &b.message, &b.hint))
        });
        diagnostics.dedup();
        let summary = AuditSummary {
            errors: diagnostics.iter().filter(|d| d.severity == Severity::Error).count(),
            warnings: diagnostics.iter().filter(|d| d.severity == Severity::Warning).count(),
            infos: diagnostics.iter().filter(|d| d.severity == Severity::Info).count(),
            certificates: certificates.len(),
            proven_infeasible: certificates.iter().any(Certificate::is_infeasible),
        };
        AuditReport { diagnostics, certificates, summary, state: None }
    }

    /// Attaches a state-access report (see `crate::stateaccess`); the
    /// report's `HS5xx` diagnostics must already be in `diagnostics`.
    #[must_use]
    pub fn with_state(mut self, state: StateReport) -> Self {
        self.state = Some(state);
        self
    }

    /// `true` when any error-severity diagnostic is present (the CLI exits
    /// nonzero on this).
    pub fn has_errors(&self) -> bool {
        self.summary.errors > 0
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Deterministic pretty JSON (field order is declaration order).
    ///
    /// # Panics
    ///
    /// Never in practice: the report contains no non-serializable values.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit reports serialize")
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        if let Some(state) = &self.state {
            for row in &state.fields {
                writeln!(
                    f,
                    "state: {} ({} {} B): {} — {} writer(s), {} reader(s)",
                    row.field, row.kind, row.bytes, row.class, row.writer_mats, row.reader_mats
                )?;
            }
            writeln!(
                f,
                "state: {} of {} fields relaxable; {} of {} dependency edges relaxed ({})",
                state.relaxable_fields,
                state.total_fields,
                state.relaxed_edges,
                state.total_edges,
                state.mode
            )?;
        }
        if self.summary.proven_infeasible {
            writeln!(f, "instance: PROVEN INFEASIBLE before search")?;
        }
        write!(
            f,
            "audit: {} error(s), {} warning(s), {} info(s), {} certificate(s)",
            self.summary.errors,
            self.summary.warnings,
            self.summary.infos,
            self.summary.certificates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn span_renders_compactly() {
        let s = Span::mat_field("t1", "meta.x").in_program("p");
        assert_eq!(s.to_string(), "p/t1 [meta.x]");
        let e = Span::edge("a", "b");
        assert_eq!(e.to_string(), "a -> b");
        assert!(Span::default().is_empty());
    }

    #[test]
    fn report_sorts_counts_and_flags_errors() {
        let d1 = Diagnostic::new("HD103", Severity::Warning, "w");
        let d2 = Diagnostic::new("HD101", Severity::Error, "e");
        let report = AuditReport::new(vec![d1, d2], Vec::new());
        assert_eq!(report.diagnostics[0].code, "HD101");
        assert_eq!(report.summary.errors, 1);
        assert_eq!(report.summary.warnings, 1);
        assert!(report.has_errors());
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn report_json_round_trips() {
        let d = Diagnostic::new("HD101", Severity::Error, "boom")
            .with_span(Span::mat("t"))
            .with_hint("fix it");
        let report = AuditReport::new(vec![d], Vec::new());
        let json = report.to_json();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
