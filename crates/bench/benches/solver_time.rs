//! Exp#3 in microcosm: heuristic vs. first-fit vs. an ILP framework on the
//! testbed workload. The ILP's budget is clamped so the bench terminates;
//! the orders-of-magnitude gap is visible regardless.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_baselines::{FirstFitByLevel, IlpBaseline, IlpConfig};
use hermes_bench::{analyze, workload};
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes_net::topology;
use std::hint::black_box;
use std::time::Duration;

fn solver_time(c: &mut Criterion) {
    let tdg = analyze(&workload(6));
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let mut group = c.benchmark_group("solver_time");
    group.sample_size(10);
    group.bench_function("hermes_heuristic", |b| {
        b.iter(|| black_box(GreedyHeuristic::new().deploy(black_box(&tdg), &net, &eps)))
    });
    group.bench_function("ffl", |b| {
        b.iter(|| black_box(FirstFitByLevel.deploy(black_box(&tdg), &net, &eps)))
    });
    group.bench_function("min_stage_ilp_100ms_budget", |b| {
        let ilp = IlpBaseline::min_stage(IlpConfig {
            time_limit: Duration::from_millis(100),
            ..Default::default()
        });
        b.iter(|| black_box(ilp.deploy(black_box(&tdg), &net, &eps)))
    });
    group.finish();
}

criterion_group!(benches, solver_time);
criterion_main!(benches);
