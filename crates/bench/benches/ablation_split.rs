//! Ablation (timing side): the paper's min-metadata split vs. balanced and
//! random splits. The *quality* side of this ablation is reported by
//! `cargo run -p hermes-bench --bin ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_bench::{analyze, workload};
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, SplitStrategy};
use hermes_net::topology::table3_wan;
use std::hint::black_box;

fn ablation_split(c: &mut Criterion) {
    let tdg = analyze(&workload(30));
    let net = table3_wan(0);
    let eps = Epsilon::loose();
    let mut group = c.benchmark_group("ablation_split");
    group.sample_size(20);
    for (label, strategy) in [
        ("min_metadata", SplitStrategy::MinMetadata),
        ("balanced", SplitStrategy::Balanced),
        ("random", SplitStrategy::Random(7)),
    ] {
        group.bench_function(label, |b| {
            let h = GreedyHeuristic::with_strategy(strategy);
            b.iter(|| black_box(h.deploy(black_box(&tdg), &net, &eps)))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_split);
criterion_main!(benches);
