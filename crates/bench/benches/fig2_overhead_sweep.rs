//! Criterion bench behind Figure 2: cost of simulating one testbed flow
//! per overhead level. Regenerate the figure itself with
//! `cargo run -p hermes-bench --bin fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_sim::testbed::{normalized_impact, TestbedConfig};
use std::hint::black_box;

fn overhead_sweep(c: &mut Criterion) {
    let config = TestbedConfig { packets: 1_000, ..Default::default() };
    let mut group = c.benchmark_group("fig2_overhead_sweep");
    for overhead in [28u32, 68, 108] {
        group.bench_with_input(
            BenchmarkId::new("512B_packets", overhead),
            &overhead,
            |b, &overhead| {
                b.iter(|| black_box(normalized_impact(&config, 512, black_box(overhead))))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, overhead_sweep);
criterion_main!(benches);
