//! Empirical check of Theorem 2: the greedy heuristic's running time
//! grows near-linearly in `(|V| + |E|) log |V| + |Q|²` with the workload,
//! staying in milliseconds where ILP solvers take hours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_bench::{analyze, workload};
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes_net::topology::table3_wan;
use std::hint::black_box;

fn heuristic_scaling(c: &mut Criterion) {
    let net = table3_wan(9);
    let eps = Epsilon::loose();
    let mut group = c.benchmark_group("heuristic_scaling");
    group.sample_size(20);
    for programs in [10usize, 20, 30, 50] {
        let tdg = analyze(&workload(programs));
        group.bench_with_input(BenchmarkId::new("programs", programs), &tdg, |b, tdg| {
            b.iter(|| black_box(GreedyHeuristic::new().deploy(black_box(tdg), &net, &eps)))
        });
    }
    group.finish();
}

criterion_group!(benches, heuristic_scaling);
criterion_main!(benches);
