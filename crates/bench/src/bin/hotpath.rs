//! Hot-path bench: before/after evidence for the evaluation-core rewrite.
//!
//! The exact solver's branch step used to allocate a delta vector and run
//! a from-scratch Kahn check per candidate, and every accepted leaf
//! re-materialized the full plan to score it. The rewrite replaces that
//! with the shared [`IncrementalEval`] (O(delta) objective / acyclicity
//! maintenance) and the memoized [`StageFeasCache`]. This binary measures:
//!
//! - **nodes/sec of the bare exact search** — the pre-rewrite search is
//!   embedded verbatim below ([`baseline`]) so both implementations run in
//!   the same process on the same workload;
//! - **heap allocations per branch step**, via a counting global
//!   allocator (the rewrite's steady-state branch step allocates nothing);
//! - **time-to-proven-optimal** — old sequential greedy-seed-then-search
//!   vs the current seeded solver and the 2-thread portfolio race;
//! - **evaluator micro-ops** — `place`/`unplace` pairs per second against
//!   a from-scratch rescoring of the same assignment.
//!
//! Modes: default prints text tables; `--json` emits the same data as JSON
//! (recorded as `results/BENCH_hotpath.json`); `--smoke` runs fast
//! deterministic equivalence probes (incremental evaluator vs scratch
//! references, feasibility cache vs direct packing) for CI.

use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, workload};
use hermes_core::{
    materialize, stage_feasible, Epsilon, GreedyHeuristic, IncrementalEval, OptimalSolver,
    Portfolio, SearchContext, Solver, StageFeasCache,
};
use hermes_net::{topology, Network};
use hermes_tdg::{NodeId, Tdg};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeSet;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts every heap allocation so the bench can report allocations per
/// explored search node — the "zero allocations per branch step" claim is
/// measured, not asserted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Wall-clock budget for the bare (unseeded) searches; nodes/sec is a
/// rate, so a capped run measures it just as well as an exhausted one.
const BARE_BUDGET: Duration = Duration::from_secs(3);
/// Minimum cumulative wall per throughput measurement; solves repeat
/// until this much search time has accumulated (see [`sustained`]).
const MEASURE_FLOOR: Duration = Duration::from_millis(500);
/// Repetitions for the seeded wall-time measurements (minimum is kept).
const REPS: usize = 3;

/// The pre-rewrite exact search, embedded for an in-process baseline: the
/// branch step allocates a fresh delta vector, re-runs Kahn from scratch
/// per candidate, and every surviving leaf re-materializes the plan.
mod baseline {
    use super::{materialize, BTreeSet, Epsilon, Network, NodeId, SearchContext, Tdg};
    use hermes_net::SwitchId;

    pub struct Search<'a> {
        pub tdg: &'a Tdg,
        pub net: &'a Network,
        pub eps: &'a Epsilon,
        pub order: &'a [NodeId],
        pub candidates: &'a [SwitchId],
        pub symmetric: bool,
        pub assign: Vec<usize>,
        pub used_capacity: Vec<f64>,
        pub pair_bytes: Vec<u64>,
        pub order_edges: Vec<u32>,
        pub current_max: u64,
        pub best: u64,
        pub found: bool,
        pub explored: u64,
        pub ctx: &'a SearchContext,
        pub stopped: bool,
    }

    impl Search<'_> {
        fn bound(&self) -> u64 {
            self.best.min(self.ctx.incumbent_bound())
        }

        pub fn dfs(&mut self, depth: usize) {
            if self.stopped {
                return;
            }
            self.explored += 1;
            if self.ctx.should_stop() {
                self.stopped = true;
                return;
            }
            if self.current_max >= self.bound() {
                return;
            }
            if depth == self.order.len() {
                self.accept_leaf();
                return;
            }
            let node = self.order[depth];
            let q = self.candidates.len();
            let resource = self.tdg.node(node).mat.resource();

            let used_switches: usize = if self.symmetric {
                self.assign.iter().filter(|&&a| a != usize::MAX).collect::<BTreeSet<_>>().len()
            } else {
                0
            };

            for c in 0..q {
                if self.symmetric && c > used_switches {
                    break;
                }
                let sw = self.net.switch(self.candidates[c]);
                if self.used_capacity[c] + resource > sw.total_capacity() + 1e-9 {
                    continue;
                }
                let opens_new = self.used_capacity[c] == 0.0;
                if opens_new {
                    let occupied = self.used_capacity.iter().filter(|&&u| u > 0.0).count();
                    if occupied + 1 > self.eps.max_switches {
                        continue;
                    }
                }

                let mut delta: Vec<(usize, u64)> = Vec::new();
                for e in self.tdg.in_edges(node) {
                    let p = self.assign[e.from.index()];
                    if p == usize::MAX || p == c {
                        continue;
                    }
                    delta.push((p * q + c, u64::from(e.bytes)));
                }

                for &(key, _) in &delta {
                    self.order_edges[key] += 1;
                }
                if !self.switch_dag_acyclic() {
                    for &(key, _) in &delta {
                        self.order_edges[key] -= 1;
                    }
                    continue;
                }

                let old_max = self.current_max;
                for &(key, bytes) in &delta {
                    self.pair_bytes[key] += bytes;
                    self.current_max = self.current_max.max(self.pair_bytes[key]);
                }
                self.used_capacity[c] += resource;
                self.assign[node.index()] = c;

                self.dfs(depth + 1);

                self.assign[node.index()] = usize::MAX;
                self.used_capacity[c] -= resource;
                for &(key, bytes) in &delta {
                    self.pair_bytes[key] -= bytes;
                    self.order_edges[key] -= 1;
                }
                self.current_max = old_max;
                if self.stopped {
                    return;
                }
            }
        }

        #[allow(clippy::needless_range_loop)] // `v` indexes both arrays
        fn switch_dag_acyclic(&self) -> bool {
            let q = self.candidates.len();
            let mut indegree = vec![0u32; q];
            for u in 0..q {
                for v in 0..q {
                    if self.order_edges[u * q + v] > 0 {
                        indegree[v] += 1;
                    }
                }
            }
            let mut stack: Vec<usize> = (0..q).filter(|&v| indegree[v] == 0).collect();
            let mut seen = 0usize;
            while let Some(u) = stack.pop() {
                seen += 1;
                for v in 0..q {
                    if self.order_edges[u * q + v] > 0 {
                        indegree[v] -= 1;
                        if indegree[v] == 0 {
                            stack.push(v);
                        }
                    }
                }
            }
            seen == q
        }

        fn accept_leaf(&mut self) {
            let Some(plan) = materialize(self.tdg, self.net, self.candidates, &self.assign) else {
                return;
            };
            if plan.end_to_end_latency_us() > self.eps.max_latency_us {
                return;
            }
            let objective = plan.max_inter_switch_bytes(self.tdg);
            if objective < self.bound() {
                self.best = objective;
                self.found = true;
                self.ctx.publish_incumbent(objective);
            }
        }
    }

    /// Runs the pre-rewrite bare search to exhaustion or deadline.
    /// Returns `(nodes_explored, best_objective, exhausted)`.
    pub fn solve(
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> (u64, Option<u64>, bool) {
        let candidates = net.programmable_switches();
        let order = tdg.topo_order().expect("TDGs are DAGs");
        let q = candidates.len();
        let symmetric = eps.max_latency_us.is_infinite()
            && candidates.windows(2).all(|w| {
                let (a, b) = (net.switch(w[0]), net.switch(w[1]));
                a.stages == b.stages && (a.stage_capacity - b.stage_capacity).abs() < 1e-12
            });
        let mut search = Search {
            tdg,
            net,
            eps,
            order: &order,
            candidates: &candidates,
            symmetric,
            assign: vec![usize::MAX; tdg.node_count()],
            used_capacity: vec![0.0; q],
            pair_bytes: vec![0u64; q * q],
            order_edges: vec![0u32; q * q],
            current_max: 0,
            best: u64::MAX,
            found: false,
            explored: 0,
            ctx,
            stopped: false,
        };
        search.dfs(0);
        (search.explored, search.found.then_some(search.best), !search.stopped)
    }
}

#[derive(Serialize)]
struct BareRun {
    nodes_explored: u64,
    wall_ms: f64,
    nodes_per_sec: f64,
    /// Heap allocations during the search divided by nodes explored.
    allocs_per_node: f64,
    objective: Option<u64>,
    exhausted: bool,
}

#[derive(Serialize)]
struct Scenario {
    topology: String,
    tdg_nodes: usize,
    /// Pre-rewrite bare search (embedded baseline).
    before_bare: BareRun,
    /// Current bare search ([`OptimalSolver::bare`]).
    after_bare: BareRun,
    nodes_per_sec_speedup: f64,
    /// Old sequential pipeline: greedy seed, then the baseline search to
    /// exhaustion (its time-to-proven-optimal).
    before_seeded_ms: f64,
    /// Current seeded [`OptimalSolver`] to proven optimality.
    after_seeded_ms: f64,
    /// Current 2-thread portfolio's earliest proven-optimal moment.
    after_portfolio_proven_ms: Option<f64>,
}

#[derive(Serialize)]
struct MicroOps {
    ops: u64,
    /// One op = `place` + `unplace` of a random node on [`IncrementalEval`].
    incremental_ns_per_op: f64,
    incremental_allocs_per_op: f64,
    /// The same op scored by a from-scratch edge scan (what the pre-rewrite
    /// code paths effectively did per probe).
    scratch_ns_per_op: f64,
    speedup: f64,
}

/// One worker count on the thread-scaling curve of the work-stealing
/// parallel exact search.
#[derive(Serialize)]
struct ThreadPoint {
    workers: usize,
    nodes_explored: u64,
    wall_ms: f64,
    nodes_per_sec: f64,
    /// Throughput relative to the 1-worker point of the same curve.
    speedup_vs_1: f64,
    steals: u64,
    bound_prunes: u64,
    subtree_roots: usize,
    frontier_depth: usize,
    objective: Option<u64>,
    exhausted: bool,
}

/// Thread-scaling curve of the bare parallel exact search. `speedup_vs_1`
/// only means anything relative to `host_parallelism`: on a 1-core host
/// every point time-slices the same CPU and the curve is honestly flat.
#[derive(Serialize)]
struct ThreadScaling {
    topology: String,
    host_parallelism: usize,
    points: Vec<ThreadPoint>,
}

#[derive(Serialize)]
struct Report {
    workload_programs: usize,
    bare_budget_secs: u64,
    reps: usize,
    scenarios: Vec<Scenario>,
    evaluator_microops: MicroOps,
    thread_scaling: ThreadScaling,
}

/// Repeats one bare solve until the cumulative wall crosses
/// [`MEASURE_FLOOR`], accumulating nodes / wall / allocations — a single
/// pruned search can exhaust a scenario in well under a millisecond, where
/// one-shot numbers are dominated by setup and timer noise.
fn sustained(
    mut solve_once: impl FnMut() -> (u64, Option<u64>, bool),
) -> (u64, Duration, u64, Option<u64>, bool) {
    let (mut nodes, mut wall, mut allocs) = (0u64, Duration::ZERO, 0u64);
    let (mut objective, mut exhausted) = (None, false);
    let mut first = true;
    while first || wall < MEASURE_FLOOR {
        let a0 = allocs_now();
        let start = Instant::now();
        let (n, obj, ex) = solve_once();
        wall += start.elapsed();
        allocs += allocs_now() - a0;
        nodes += n;
        if first {
            objective = obj;
            exhausted = ex;
            first = false;
        }
    }
    (nodes, wall, allocs, objective, exhausted)
}

fn bare_before(tdg: &Tdg, net: &Network, eps: &Epsilon) -> BareRun {
    let (nodes, wall, allocs, objective, exhausted) = sustained(|| {
        let ctx = SearchContext::with_time_limit(BARE_BUDGET);
        baseline::solve(tdg, net, eps, &ctx)
    });
    run_stats(nodes, wall, allocs, objective, exhausted)
}

fn bare_after(tdg: &Tdg, net: &Network, eps: &Epsilon) -> BareRun {
    let (nodes, wall, allocs, objective, exhausted) = sustained(|| {
        let ctx = SearchContext::with_time_limit(BARE_BUDGET);
        match OptimalSolver::bare().solve(tdg, net, eps, &ctx) {
            Ok(o) => (o.stats.nodes_explored, Some(o.objective), o.stats.proven_bound.is_some()),
            Err(_) => (0, None, false),
        }
    });
    run_stats(nodes, wall, allocs, objective, exhausted)
}

fn run_stats(
    explored: u64,
    wall: Duration,
    allocs: u64,
    objective: Option<u64>,
    exhausted: bool,
) -> BareRun {
    let secs = wall.as_secs_f64().max(f64::EPSILON);
    BareRun {
        nodes_explored: explored,
        wall_ms: secs * 1000.0,
        nodes_per_sec: explored as f64 / secs,
        allocs_per_node: allocs as f64 / (explored.max(1)) as f64,
        objective,
        exhausted,
    }
}

fn min_wall_ms(mut run: impl FnMut() -> Duration) -> f64 {
    (0..REPS).map(|_| run()).min().unwrap_or_default().as_secs_f64() * 1000.0
}

/// Scales every switch's per-stage capacity so packing the ten-program
/// workload actually binds — with stock Tofino capacity the independent
/// programs admit a zero-objective placement on four switches and the
/// pruned search exhausts in a few hundred nodes, leaving little to
/// measure. (The three-switch chain stays at stock capacity: tighter and
/// the greedy seeder needs a fourth segment.)
fn tighten(mut net: Network, stage_capacity: f64) -> Network {
    let ids: Vec<_> = net.switch_ids().collect();
    for id in ids {
        net.switch_mut(id).stage_capacity = stage_capacity;
    }
    net
}

fn bench_scenario(name: &str, net: &Network) -> Scenario {
    let tdg = analyze(&workload(10));
    let eps = Epsilon::loose();

    let before_bare = bare_before(&tdg, net, &eps);
    let after_bare = bare_after(&tdg, net, &eps);

    // Old sequential pipeline to proven optimality: greedy publishes the
    // incumbent, then the baseline search runs to exhaustion.
    let before_seeded_ms = min_wall_ms(|| {
        let ctx = SearchContext::with_time_limit(Duration::from_secs(60));
        let start = Instant::now();
        GreedyHeuristic::new().solve(&tdg, net, &eps, &ctx).expect("workload is feasible");
        let _ = baseline::solve(&tdg, net, &eps, &ctx);
        start.elapsed()
    });
    let after_seeded_ms = min_wall_ms(|| {
        OptimalSolver::new()
            .solve(&tdg, net, &eps, &SearchContext::with_time_limit(Duration::from_secs(60)))
            .expect("workload is feasible")
            .stats
            .wall
    });
    let mut proven: Option<Duration> = None;
    for _ in 0..REPS {
        let race = Portfolio::greedy_exact()
            .race(&tdg, net, &eps, &SearchContext::with_time_limit(Duration::from_secs(60)))
            .expect("workload is feasible");
        let t = race.reports.iter().filter(|r| r.proven_optimal).map(|r| r.wall).min();
        proven = match (proven, t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    Scenario {
        topology: name.to_owned(),
        tdg_nodes: tdg.node_count(),
        nodes_per_sec_speedup: after_bare.nodes_per_sec
            / before_bare.nodes_per_sec.max(f64::EPSILON),
        before_bare,
        after_bare,
        before_seeded_ms,
        after_seeded_ms,
        after_portfolio_proven_ms: proven.map(|d| d.as_secs_f64() * 1000.0),
    }
}

/// Measures the work-stealing parallel exact search at 1/2/4/8 workers on
/// the binding linear-4 scenario, via [`OptimalSolver::solve_instrumented`]
/// for the steal / frontier telemetry. Nodes/sec uses the same sustained
/// accumulation as the bare runs.
fn bench_thread_scaling() -> ThreadScaling {
    let tdg = analyze(&workload(10));
    let net = tighten(topology::linear(4, 10.0), 0.97);
    let eps = Epsilon::loose();
    let solver = OptimalSolver::bare();
    let mut points: Vec<ThreadPoint> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (mut nodes, mut wall) = (0u64, Duration::ZERO);
        let (mut steals, mut prunes) = (0u64, 0u64);
        let (mut roots, mut depth) = (0usize, 0usize);
        let (mut objective, mut exhausted) = (None, false);
        let mut first = true;
        while first || wall < MEASURE_FLOOR {
            let ctx = SearchContext::with_time_limit(BARE_BUDGET)
                .with_threads(NonZeroUsize::new(workers).expect("worker counts are nonzero"));
            let start = Instant::now();
            let (result, stats) = solver.solve_instrumented(&tdg, &net, &eps, &ctx);
            wall += start.elapsed();
            steals += stats.steals;
            prunes += stats.bound_prunes;
            if let Ok(o) = &result {
                nodes += o.stats.nodes_explored;
            }
            if first {
                roots = stats.subtree_roots;
                depth = stats.frontier_depth;
                if let Ok(o) = &result {
                    objective = Some(o.objective);
                    exhausted = o.stats.proven_bound.is_some();
                }
                first = false;
            }
        }
        let secs = wall.as_secs_f64().max(f64::EPSILON);
        let rate = nodes as f64 / secs;
        let base = points.first().map_or(rate, |p: &ThreadPoint| p.nodes_per_sec);
        points.push(ThreadPoint {
            workers,
            nodes_explored: nodes,
            wall_ms: secs * 1000.0,
            nodes_per_sec: rate,
            speedup_vs_1: rate / base.max(f64::EPSILON),
            steals,
            bound_prunes: prunes,
            subtree_roots: roots,
            frontier_depth: depth,
            objective,
            exhausted,
        });
    }
    ThreadScaling {
        topology: "linear-4".to_owned(),
        host_parallelism: std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
        points,
    }
}

/// Splitmix64 — deterministic op streams without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// From-scratch `A_max` of an assignment — the per-probe cost the old
/// refine/solver paths paid via `max_inter_switch_bytes` recomputation.
fn scratch_amax(tdg: &Tdg, assign: &[usize], q: usize) -> u64 {
    let mut pair = vec![0u64; q * q];
    for e in tdg.edges() {
        let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
        if u != usize::MAX && v != usize::MAX && u != v {
            pair[u * q + v] += u64::from(e.bytes);
        }
    }
    pair.into_iter().max().unwrap_or(0)
}

fn bench_microops() -> MicroOps {
    let tdg = analyze(&workload(10));
    let n = tdg.node_count();
    let q = 3usize;
    const OPS: u64 = 200_000;

    // Fully place, then each op moves one random node to a random switch
    // (an unplace + place pair), mirroring the solver's branch step.
    let mut eval = IncrementalEval::new(&tdg, q);
    let mut assign = vec![0usize; n];
    for (node, slot) in assign.iter_mut().enumerate() {
        *slot = node % q;
        eval.place(node, *slot);
    }
    let mut rng = 0x5EED_u64;
    let a0 = allocs_now();
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..OPS {
        let node = (splitmix64(&mut rng) as usize) % n;
        let to = (splitmix64(&mut rng) as usize) % q;
        eval.unplace(node);
        eval.place(node, to);
        assign[node] = to;
        sink ^= eval.amax();
    }
    let inc_wall = start.elapsed();
    let inc_allocs = allocs_now() - a0;

    // The same op stream scored from scratch each time.
    let mut rng = 0x5EED_u64;
    let mut scratch_assign: Vec<usize> = (0..n).map(|i| i % q).collect();
    let start = Instant::now();
    for _ in 0..OPS {
        let node = (splitmix64(&mut rng) as usize) % n;
        let to = (splitmix64(&mut rng) as usize) % q;
        scratch_assign[node] = to;
        sink ^= scratch_amax(&tdg, &scratch_assign, q);
    }
    let scr_wall = start.elapsed();
    assert_eq!(assign, scratch_assign, "op streams diverged");
    std::hint::black_box(sink);

    let per_op = |d: Duration| d.as_secs_f64() * 1e9 / OPS as f64;
    MicroOps {
        ops: OPS,
        incremental_ns_per_op: per_op(inc_wall),
        incremental_allocs_per_op: inc_allocs as f64 / OPS as f64,
        scratch_ns_per_op: per_op(scr_wall),
        speedup: per_op(scr_wall) / per_op(inc_wall).max(f64::EPSILON),
    }
}

/// Deterministic equivalence probes for CI: the incremental evaluator and
/// the feasibility cache must agree exactly with from-scratch references.
fn smoke() {
    let tdg = analyze(&workload(10));
    let n = tdg.node_count();
    let q = 3usize;

    // 2000 random place/unplace steps cross-checked against scratch A_max
    // and scratch switch-DAG acyclicity.
    let scratch_acyclic = |assign: &[usize]| -> bool {
        let mut edge = vec![false; q * q];
        for e in tdg.edges() {
            let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
            if u != usize::MAX && v != usize::MAX && u != v {
                edge[u * q + v] = true;
            }
        }
        let mut indegree = vec![0u32; q];
        for u in 0..q {
            for (v, d) in indegree.iter_mut().enumerate() {
                if edge[u * q + v] {
                    *d += 1;
                }
            }
        }
        let mut stack: Vec<usize> = (0..q).filter(|&v| indegree[v] == 0).collect();
        let mut seen = 0;
        while let Some(u) = stack.pop() {
            seen += 1;
            for v in 0..q {
                if edge[u * q + v] {
                    indegree[v] -= 1;
                    if indegree[v] == 0 {
                        stack.push(v);
                    }
                }
            }
        }
        seen == q
    };
    let mut eval = IncrementalEval::new(&tdg, q);
    let mut assign = vec![usize::MAX; n];
    let mut rng = 0xC0FFEE_u64;
    let steps = 2000u32;
    for _ in 0..steps {
        let node = (splitmix64(&mut rng) as usize) % n;
        if assign[node] == usize::MAX {
            let c = (splitmix64(&mut rng) as usize) % q;
            eval.place(node, c);
            assign[node] = c;
        } else {
            eval.unplace(node);
            assign[node] = usize::MAX;
        }
        assert_eq!(eval.amax(), scratch_amax(&tdg, &assign, q), "A_max diverged");
        assert_eq!(eval.is_acyclic(), scratch_acyclic(&assign), "acyclicity diverged");
    }

    // Cache vs direct stage packing over every subset of the first 10 nodes.
    let ids: Vec<NodeId> = tdg.node_ids().take(10).collect();
    let shape = {
        let net = topology::linear(3, 10.0);
        net.switch(net.programmable_switches()[0]).target_model()
    };
    let mut cache = StageFeasCache::new(&tdg);
    let mut probes = 0u32;
    for mask in 0u32..(1 << ids.len()) {
        let set: BTreeSet<NodeId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &id)| id)
            .collect();
        let expect = stage_feasible(&tdg, &set, &shape);
        assert_eq!(
            cache.feasible_set(&tdg, &shape, &set),
            expect,
            "cache diverged on mask {mask:#x}"
        );
        probes += 1;
    }

    // Parallel determinism probe: the work-stealing search must return
    // the exact same plan, objective, optimality proof, and proven bound
    // at every worker count, run after run. Only deterministic fields are
    // compared (never node counts or wall clock), so CI can byte-diff two
    // full `--smoke` outputs. Stock linear-3 is the probe scenario: its
    // optimum (objective 1) beats the greedy seed, so the parallel engine
    // actually searches instead of early-outing on a zero-objective seed.
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let solve = |workers: usize| {
        let ctx = SearchContext::with_time_limit(Duration::from_secs(60))
            .with_threads(NonZeroUsize::new(workers).expect("worker counts are nonzero"));
        OptimalSolver::new().solve(&tdg, &net, &eps, &ctx).expect("workload is feasible")
    };
    let reference = solve(1);
    let mut parallel_runs = 0u32;
    for workers in [1usize, 2, 4, 8] {
        for _ in 0..2 {
            let o = solve(workers);
            assert_eq!(o.plan, reference.plan, "plan diverged at {workers} workers");
            assert_eq!(o.objective, reference.objective, "objective diverged at {workers} workers");
            assert_eq!(
                o.proven_optimal, reference.proven_optimal,
                "optimality proof diverged at {workers} workers"
            );
            assert_eq!(
                o.stats.proven_bound, reference.stats.proven_bound,
                "proven bound diverged at {workers} workers"
            );
            parallel_runs += 1;
        }
    }

    println!(
        "{{\"evaluator_steps\":{steps},\"evaluator_ok\":true,\"cache_probes\":{probes},\"cache_ok\":true,\"parallel_runs\":{parallel_runs},\"parallel_objective\":{},\"parallel_proven\":{},\"parallel_ok\":true}}",
        reference.objective, reference.proven_optimal
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let scenarios: Vec<Scenario> = [
        ("linear-3", topology::linear(3, 10.0)),
        ("linear-4", tighten(topology::linear(4, 10.0), 0.97)),
        ("star-3", tighten(topology::star(3, 10.0), 0.97)),
    ]
    .iter()
    .map(|(name, net)| bench_scenario(name, net))
    .collect();
    let report = Report {
        workload_programs: 10,
        bare_budget_secs: BARE_BUDGET.as_secs(),
        reps: REPS,
        scenarios,
        evaluator_microops: bench_microops(),
        thread_scaling: bench_thread_scaling(),
    };
    if maybe_json(&report) {
        return;
    }

    println!("Hot-path bench — ten-program library, bare budget {BARE_BUDGET:?}\n");
    let mut t = Table::new([
        "topology",
        "before nodes/s",
        "after nodes/s",
        "speedup",
        "before allocs/node",
        "after allocs/node",
    ]);
    for s in &report.scenarios {
        t.row([
            s.topology.clone(),
            format!("{:.0}", s.before_bare.nodes_per_sec),
            format!("{:.0}", s.after_bare.nodes_per_sec),
            format!("{:.2}x", s.nodes_per_sec_speedup),
            format!("{:.2}", s.before_bare.allocs_per_node),
            format!("{:.3}", s.after_bare.allocs_per_node),
        ]);
    }
    println!("(a) bare exact search throughput\n{}", t.render());

    let mut p = Table::new(["topology", "before seeded ms", "after seeded ms", "portfolio ms"]);
    for s in &report.scenarios {
        p.row([
            s.topology.clone(),
            format!("{:.2}", s.before_seeded_ms),
            format!("{:.2}", s.after_seeded_ms),
            s.after_portfolio_proven_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
        ]);
    }
    println!("(b) time-to-proven-optimal\n{}", p.render());

    let m = &report.evaluator_microops;
    println!(
        "(c) evaluator micro-ops: {:.0} ns/op incremental ({:.3} allocs/op) vs {:.0} ns/op scratch — {:.1}x",
        m.incremental_ns_per_op, m.incremental_allocs_per_op, m.scratch_ns_per_op, m.speedup
    );

    let ts = &report.thread_scaling;
    let mut w = Table::new(["workers", "nodes/s", "speedup", "steals", "roots", "depth"]);
    for p in &ts.points {
        w.row([
            p.workers.to_string(),
            format!("{:.0}", p.nodes_per_sec),
            format!("{:.2}x", p.speedup_vs_1),
            p.steals.to_string(),
            p.subtree_roots.to_string(),
            p.frontier_depth.to_string(),
        ]);
    }
    println!(
        "\n(d) work-stealing thread scaling — {} (host parallelism {})\n{}",
        ts.topology,
        ts.host_parallelism,
        w.render()
    );
}
