//! Chaos recovery experiment: recovery latency and healed overhead.
//!
//! Rolls the real-program workload out through the failure-aware runtime
//! under the chaos fault profile, across a sweep of seeds on two
//! topologies, and reports per topology: how many runs committed cleanly,
//! committed after healing, or rolled back; the mean/max virtual recovery
//! latency of healed runs; and `A_max` before vs. after healing (healing
//! re-homes lost MATs into residual capacity, so the healed layout may pay
//! more per-packet overhead than the optimizer's original placement).

use hermes_bench::analyze;
use hermes_bench::report::{maybe_json, Table};
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes_dataplane::library;
use hermes_net::topology;
use hermes_runtime::{
    DeploymentRuntime, Event, FaultInjector, FaultProfile, RetryPolicy, RolloutOutcome,
};
use serde::Serialize;

const SEEDS: u64 = 60;

#[derive(Serialize)]
struct TopologyReport {
    topology: String,
    runs: u64,
    committed_clean: u64,
    committed_healed: u64,
    rolled_back: u64,
    total_faults: u64,
    total_retries: u64,
    mean_recovery_us: f64,
    max_recovery_us: u64,
    mean_a_max_before: f64,
    mean_a_max_after: f64,
}

fn sweep(name: &str, net: &hermes_net::Network) -> TopologyReport {
    let tdg = analyze(&library::real_programs());
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new()
        .deploy(&tdg, net, &eps)
        .expect("workload deploys on the healthy topology");

    let mut report = TopologyReport {
        topology: name.to_string(),
        runs: SEEDS,
        committed_clean: 0,
        committed_healed: 0,
        rolled_back: 0,
        total_faults: 0,
        total_retries: 0,
        mean_recovery_us: 0.0,
        max_recovery_us: 0,
        mean_a_max_before: 0.0,
        mean_a_max_after: 0.0,
    };
    let mut recoveries: Vec<u64> = Vec::new();
    let mut before: Vec<u64> = Vec::new();
    let mut after: Vec<u64> = Vec::new();

    for seed in 0..SEEDS {
        let injector = FaultInjector::new(seed, FaultProfile::chaos());
        let mut rt = DeploymentRuntime::new(net.clone(), eps, injector, RetryPolicy::default());
        let outcome = rt.rollout(&tdg, plan.clone());
        let log = rt.log();
        report.total_faults += log.count(|e| matches!(e, Event::FaultInjected { .. })) as u64;
        report.total_retries += log.count(|e| matches!(e, Event::RetryScheduled { .. })) as u64;
        match outcome {
            RolloutOutcome::Committed { healed: false, .. } => report.committed_clean += 1,
            RolloutOutcome::Committed { healed: true, .. } => {
                report.committed_healed += 1;
                for e in &log.events {
                    if let Event::RecoveryCompleted {
                        recovery_us, a_max_before, a_max_after, ..
                    } = e
                    {
                        recoveries.push(*recovery_us);
                        before.push(*a_max_before);
                        after.push(*a_max_after);
                    }
                }
            }
            RolloutOutcome::RolledBack { .. } => report.rolled_back += 1,
            RolloutOutcome::ControllerCrashed { .. } => {
                unreachable!("FaultProfile::chaos() never injects a controller crash")
            }
        }
    }

    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    report.mean_recovery_us = mean(&recoveries);
    report.max_recovery_us = recoveries.iter().copied().max().unwrap_or(0);
    report.mean_a_max_before = mean(&before);
    report.mean_a_max_after = mean(&after);
    report
}

fn main() {
    let reports = vec![
        sweep("linear:4", &topology::linear(4, 10.0)),
        sweep("fattree:4", &topology::fat_tree(4, 10.0)),
    ];

    if maybe_json(&reports) {
        return;
    }

    let mut table = Table::new([
        "topology",
        "runs",
        "clean",
        "healed",
        "rolled back",
        "faults",
        "retries",
        "mean rec (us)",
        "max rec (us)",
        "A_max pre",
        "A_max post",
    ]);
    for r in &reports {
        table.row([
            r.topology.clone(),
            r.runs.to_string(),
            r.committed_clean.to_string(),
            r.committed_healed.to_string(),
            r.rolled_back.to_string(),
            r.total_faults.to_string(),
            r.total_retries.to_string(),
            format!("{:.0}", r.mean_recovery_us),
            r.max_recovery_us.to_string(),
            format!("{:.1}", r.mean_a_max_before),
            format!("{:.1}", r.mean_a_max_after),
        ]);
    }
    println!("Chaos recovery: {SEEDS} seeded fault schedules per topology\n");
    print!("{}", table.render());
}
