//! Audit-engine bench: pass timings, oracle equivalence, and the
//! certificate fast-path.
//!
//! Three claims back the audit engine, and this binary measures all of
//! them instead of asserting them:
//!
//! - **Bitset dataflow tracks the oracle** — the production pass
//!   ([`dataflow_diagnostics`]) must emit byte-identical findings to the
//!   naive `BTreeSet` reference on every workload, and do so faster.
//! - **Audit cost is negligible** — the full workload audit (lints +
//!   dataflow + graph soundness + precheck) should cost milliseconds even
//!   at several times the paper's workload size, so running it in front of
//!   every solve is free.
//! - **Certificates beat the search budget** — on a provably infeasible
//!   instance the portfolio must return `ProvenInfeasible` in well under
//!   1 % of its wall-clock budget (the pre-solve bound replaces the
//!   exhaustive race).
//!
//! Modes: default prints text tables; `--json` emits the same data as
//! JSON (recorded as `results/BENCH_audit.json`); `--smoke` runs the fast
//! deterministic equivalence + fast-path probes for CI.

use hermes_analysis::{audit_instance, dataflow_diagnostics, dataflow_reference};
use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, workload};
use hermes_core::test_support::{chain_tdg, tiny_switches};
use hermes_core::{
    DeployError, DeploymentAlgorithm, Epsilon, GreedyHeuristic, Portfolio, ProgramAnalyzer,
    SearchContext,
};
use hermes_dataplane::library::aggregation;
use hermes_dataplane::Mat;
use hermes_net::topology;
use hermes_tdg::{AnalysisMode, StateClassification};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Repetitions per timing; the minimum is kept.
const REPS: usize = 5;
/// The search budget the certificate fast-path is measured against.
const BUDGET: Duration = Duration::from_secs(10);

fn min_wall(mut f: impl FnMut()) -> Duration {
    (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap_or_default()
}

#[derive(Serialize)]
struct WorkloadRow {
    programs: usize,
    tdg_nodes: usize,
    tdg_edges: usize,
    diagnostics: usize,
    audit_ms: f64,
    dataflow_fast_ms: f64,
    dataflow_oracle_ms: f64,
    dataflow_speedup: f64,
}

#[derive(Serialize)]
struct CertRow {
    instance: String,
    budget_ms: f64,
    verdict_ms: f64,
    budget_fraction: f64,
    certificate: String,
}

#[derive(Serialize)]
struct StateRow {
    programs: usize,
    fields: usize,
    classify_fast_ms: f64,
    classify_oracle_ms: f64,
    classify_speedup: f64,
}

#[derive(Serialize)]
struct RelaxRow {
    workload: String,
    amax_conservative: u64,
    amax_relaxed: u64,
}

#[derive(Serialize)]
struct Report {
    reps: usize,
    workloads: Vec<WorkloadRow>,
    certificates: Vec<CertRow>,
    state: Vec<StateRow>,
    relaxation: Vec<RelaxRow>,
}

fn bench_workload(programs: usize) -> WorkloadRow {
    let progs = workload(programs);
    let tdg = analyze(&progs);
    let net = topology::fat_tree(4, 10.0);
    let eps = Epsilon::loose();

    let fast = dataflow_diagnostics(&tdg);
    let oracle = dataflow_reference(&tdg);
    assert_eq!(fast, oracle, "bitset dataflow diverged from the oracle");

    let report = audit_instance(&progs, &net, &eps, tdg.mode());
    let audit_ms = min_wall(|| {
        std::hint::black_box(audit_instance(&progs, &net, &eps, tdg.mode()));
    });
    let fast_ms = min_wall(|| {
        std::hint::black_box(dataflow_diagnostics(&tdg));
    });
    let oracle_ms = min_wall(|| {
        std::hint::black_box(dataflow_reference(&tdg));
    });
    WorkloadRow {
        programs,
        tdg_nodes: tdg.node_count(),
        tdg_edges: tdg.edge_count(),
        diagnostics: report.diagnostics.len(),
        audit_ms: audit_ms.as_secs_f64() * 1000.0,
        dataflow_fast_ms: fast_ms.as_secs_f64() * 1000.0,
        dataflow_oracle_ms: oracle_ms.as_secs_f64() * 1000.0,
        dataflow_speedup: oracle_ms.as_secs_f64() / fast_ms.as_secs_f64().max(f64::EPSILON),
    }
}

/// Asserts fast-classifier/oracle agreement on `mats` and returns the
/// field count.
fn assert_classifier_agreement(mats: &[&Mat]) -> usize {
    let fast = StateClassification::of_mats(mats.iter().copied());
    let oracle = hermes_analysis::oracle_classification(mats.iter().copied());
    assert_eq!(fast.len(), oracle.len(), "classified field sets diverge");
    for (field, verdict) in &oracle {
        assert_eq!(fast.class(field), *verdict, "verdict diverges on `{}`", field.name());
    }
    oracle.len()
}

fn bench_state(programs: usize) -> StateRow {
    let progs = workload(programs);
    let mats: Vec<&Mat> = progs.iter().flat_map(|p| p.tables()).collect();
    let fields = assert_classifier_agreement(&mats);
    let fast_ms = min_wall(|| {
        std::hint::black_box(StateClassification::of_mats(mats.iter().copied()));
    });
    let oracle_ms = min_wall(|| {
        std::hint::black_box(hermes_analysis::oracle_classification(mats.iter().copied()));
    });
    StateRow {
        programs,
        fields,
        classify_fast_ms: fast_ms.as_secs_f64() * 1000.0,
        classify_oracle_ms: oracle_ms.as_secs_f64() * 1000.0,
        classify_speedup: oracle_ms.as_secs_f64() / fast_ms.as_secs_f64().max(f64::EPSILON),
    }
}

/// Greedy `A_max` of the aggregation exemplars under the conservative and
/// relaxed analysis modes — the headline the relaxation pays for.
fn bench_relaxation() -> Vec<RelaxRow> {
    let eps = Epsilon::loose();
    [
        // Two switches force the all-reduce workers apart; the full suite
        // needs a third for its extra segments.
        ("allreduce", vec![aggregation::allreduce()], 2),
        ("aggregation suite", aggregation::all(), 3),
    ]
    .into_iter()
    .map(|(name, programs, switches)| {
        let net = topology::linear(switches, 10.0);
        let amax = |mode: AnalysisMode| {
            let tdg = ProgramAnalyzer::with_mode(mode).analyze(&programs);
            let plan = GreedyHeuristic::new()
                .deploy(&tdg, &net, &eps)
                .unwrap_or_else(|e| panic!("{name} deploys greedily: {e}"));
            plan.max_inter_switch_bytes(&tdg)
        };
        RelaxRow {
            workload: name.to_owned(),
            amax_conservative: amax(AnalysisMode::PaperLiteral),
            amax_relaxed: amax(AnalysisMode::RelaxedState),
        }
    })
    .collect()
}

/// Races the portfolio on a provably infeasible instance and reports how
/// fast the certificate settles it relative to the full budget.
fn bench_certificate() -> Vec<CertRow> {
    let cases = [
        // Four 0.5-resource MATs need two 1.0-capacity switches; eps2 = 1.
        (
            "switch-floor vs eps2",
            chain_tdg(&[1, 1, 1], 0.5),
            tiny_switches(3, 2, 0.5),
            Epsilon::new(f64::INFINITY, 1),
        ),
        // 3 x 0.8 = 2.4 demand over 2 x 1.0 capacity.
        (
            "total demand vs capacity",
            chain_tdg(&[1, 1], 0.8),
            tiny_switches(2, 2, 0.5),
            Epsilon::loose(),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, tdg, net, eps)| {
            let mut verdict = Duration::MAX;
            let mut certificate = String::new();
            for _ in 0..REPS {
                let ctx = SearchContext::with_time_limit(BUDGET);
                let start = Instant::now();
                let outcome = Portfolio::greedy_exact().race(&tdg, &net, &eps, &ctx);
                let wall = start.elapsed();
                match outcome {
                    Err(DeployError::ProvenInfeasible { certificate: cert }) => {
                        verdict = verdict.min(wall);
                        certificate = format!("{} [{}]", cert, cert.code());
                    }
                    other => panic!("{name}: expected ProvenInfeasible, got {other:?}"),
                }
            }
            CertRow {
                instance: name.to_owned(),
                budget_ms: BUDGET.as_secs_f64() * 1000.0,
                verdict_ms: verdict.as_secs_f64() * 1000.0,
                budget_fraction: verdict.as_secs_f64() / BUDGET.as_secs_f64(),
                certificate,
            }
        })
        .collect()
}

/// Deterministic CI probes: oracle equivalence across seeds and sizes,
/// clean library audit, and the sub-1 % certificate fast-path.
fn smoke() {
    // Equivalence over the real library, merged workloads, and a spread of
    // synthetic seeds.
    let mut checked = 0u32;
    for programs in [1, 5, 10, 14] {
        let tdg = analyze(&workload(programs));
        assert_eq!(
            dataflow_diagnostics(&tdg),
            dataflow_reference(&tdg),
            "dataflow diverged on workload({programs})"
        );
        checked += 1;
    }
    for p in hermes_dataplane::library::real_programs() {
        let tdg = hermes_tdg::Tdg::from_program(&p, hermes_tdg::AnalysisMode::PaperLiteral);
        assert_eq!(
            dataflow_diagnostics(&tdg),
            dataflow_reference(&tdg),
            "dataflow diverged on {}",
            p.name()
        );
        checked += 1;
    }

    // The library workload audits clean of errors on a roomy topology.
    let progs = workload(10);
    let report = audit_instance(
        &progs,
        &topology::fat_tree(4, 10.0),
        &Epsilon::loose(),
        hermes_tdg::AnalysisMode::PaperLiteral,
    );
    assert!(!report.has_errors(), "library workload audit found errors: {report}");

    // State-access classifier: fast pass ≡ oracle on the library, the
    // synthetic extension, and the fold-heavy aggregation suite.
    let mut state_fields = 0usize;
    for programs in [1, 5, 10] {
        let progs = workload(programs);
        let mats: Vec<&Mat> = progs.iter().flat_map(|p| p.tables()).collect();
        state_fields = state_fields.max(assert_classifier_agreement(&mats));
    }
    let agg = aggregation::all();
    let agg_mats: Vec<&Mat> = agg.iter().flat_map(|p| p.tables()).collect();
    state_fields = state_fields.max(assert_classifier_agreement(&agg_mats));

    // Relaxation headline: strictly lower greedy A_max on the all-reduce.
    let relax = bench_relaxation();
    let allreduce = &relax[0];
    assert!(
        allreduce.amax_relaxed < allreduce.amax_conservative,
        "relaxation must strictly lower A_max on allreduce ({} B vs {} B)",
        allreduce.amax_relaxed,
        allreduce.amax_conservative
    );

    // Certificate fast-path: proven infeasible in < 1 % of the budget.
    let certs = bench_certificate();
    for c in &certs {
        assert!(
            c.budget_fraction < 0.01,
            "{}: verdict took {:.1} ms of a {:.0} ms budget",
            c.instance,
            c.verdict_ms,
            c.budget_ms
        );
    }

    println!(
        "{{\"equivalence_workloads\":{checked},\"library_audit_errors\":{},\
         \"state_fields\":{state_fields},\"allreduce_amax\":[{},{}],\
         \"certificate_max_budget_fraction\":{:.6},\"ok\":true}}",
        report.summary.errors,
        allreduce.amax_conservative,
        allreduce.amax_relaxed,
        certs.iter().map(|c| c.budget_fraction).fold(0.0, f64::max)
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let report = Report {
        reps: REPS,
        workloads: [5, 10, 20, 40].into_iter().map(bench_workload).collect(),
        certificates: bench_certificate(),
        state: [5, 10, 20, 40].into_iter().map(bench_state).collect(),
        relaxation: bench_relaxation(),
    };
    if maybe_json(&report) {
        return;
    }

    println!("Audit-engine bench — workload audit cost and certificate fast-path\n");
    let mut t = Table::new([
        "programs",
        "nodes",
        "edges",
        "findings",
        "audit ms",
        "dataflow ms",
        "oracle ms",
        "speedup",
    ]);
    for w in &report.workloads {
        t.row([
            w.programs.to_string(),
            w.tdg_nodes.to_string(),
            w.tdg_edges.to_string(),
            w.diagnostics.to_string(),
            format!("{:.2}", w.audit_ms),
            format!("{:.3}", w.dataflow_fast_ms),
            format!("{:.3}", w.dataflow_oracle_ms),
            format!("{:.1}x", w.dataflow_speedup),
        ]);
    }
    println!("(a) full-audit cost by workload size\n{}", t.render());

    let mut c = Table::new(["instance", "budget ms", "verdict ms", "fraction", "certificate"]);
    for row in &report.certificates {
        c.row([
            row.instance.clone(),
            format!("{:.0}", row.budget_ms),
            format!("{:.2}", row.verdict_ms),
            format!("{:.5}", row.budget_fraction),
            row.certificate.clone(),
        ]);
    }
    println!("(b) proven-infeasible fast-path vs search budget\n{}", c.render());

    let mut s = Table::new(["programs", "fields", "fast ms", "oracle ms", "speedup"]);
    for row in &report.state {
        s.row([
            row.programs.to_string(),
            row.fields.to_string(),
            format!("{:.3}", row.classify_fast_ms),
            format!("{:.3}", row.classify_oracle_ms),
            format!("{:.1}x", row.classify_speedup),
        ]);
    }
    println!("(c) state-access classification cost by workload size\n{}", s.render());

    let mut r = Table::new(["workload", "A_max conservative", "A_max relaxed"]);
    for row in &report.relaxation {
        r.row([
            row.workload.clone(),
            format!("{} B", row.amax_conservative),
            format!("{} B", row.amax_relaxed),
        ]);
    }
    println!("(d) greedy A_max, conservative vs relaxed analysis mode\n{}", r.render());
}
