//! Constant coordination metadata vs. INT-style accumulating headers.
//!
//! The related-work discussion contrasts Hermes with PINT: classic INT
//! grows every packet by a per-switch block (switch id + timestamps +
//! queue lengths = 22 B per hop, Table I), while deployment coordination
//! carries a constant piggyback. This binary quantifies that contrast on
//! a DCN-style multi-flow workload.

use hermes_bench::report::{maybe_json, Table};
use hermes_sim::workload::{aggregate, run_workload, FlowSizes, OverheadModel, WorkloadConfig};
use serde::Serialize;

#[derive(Serialize)]
struct IntRow {
    model: String,
    hops: usize,
    mean_fct_us: f64,
    p99_fct_us: f64,
    mean_goodput_gbps: f64,
}

fn main() {
    let config = WorkloadConfig {
        flows: 40,
        sizes: FlowSizes::Uniform { min: 100_000, max: 400_000 },
        ..Default::default()
    };
    // Per-hop INT block per Table I: switch id 4 + timestamps 12 + queue 6.
    const INT_PER_HOP: u32 = 22;
    // A generous constant coordination load (Hermes keeps it far smaller).
    const CONSTANT: u32 = 22;

    let mut rows = Vec::new();
    for hops in [3usize, 5, 7] {
        for (name, model) in [
            ("no metadata", OverheadModel::Constant(0)),
            ("constant 22 B (coordination)", OverheadModel::Constant(CONSTANT)),
            (
                "INT: +22 B per hop",
                OverheadModel::PerHopAccumulating { base: 0, per_hop: INT_PER_HOP },
            ),
        ] {
            let stats = aggregate(&run_workload(hops, 1.0, 100.0, 0.5, &config, model));
            rows.push(IntRow {
                model: name.to_owned(),
                hops,
                mean_fct_us: stats.mean_fct_us,
                p99_fct_us: stats.p99_fct_us,
                mean_goodput_gbps: stats.mean_goodput_gbps,
            });
        }
    }
    if maybe_json(&rows) {
        return;
    }

    println!("Constant coordination metadata vs. INT-style per-hop accumulation");
    println!("(40 flows of 100-400 kB, 1024 B packets, 100 Gbps links)\n");
    let mut t =
        Table::new(["hops", "overhead model", "mean FCT (us)", "p99 FCT (us)", "goodput (Gbps)"]);
    for r in &rows {
        t.row([
            r.hops.to_string(),
            r.model.clone(),
            format!("{:.0}", r.mean_fct_us),
            format!("{:.0}", r.p99_fct_us),
            format!("{:.3}", r.mean_goodput_gbps),
        ]);
    }
    println!("{}", t.render());
    println!(
        "takeaway: accumulating headers scale their cost with path length; a constant\n\
         piggyback (what Hermes minimizes) does not."
    );
}
