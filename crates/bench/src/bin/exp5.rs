//! Exp#5 (Figure 9): scalability.
//!
//! Varies the number of concurrently deployed programs from 10 to 50 on
//! the 10th Table III topology and reports all four panels (overhead,
//! execution time, FCT, goodput) per framework.

use hermes_baselines::standard_suite;
use hermes_bench::report::{fmt_ms, maybe_json, Table};
use hermes_bench::{analyze, ilp_budget, run_suite, workload, Measurement, RunConfig};
use hermes_net::topology::table3_wan;
use serde::Serialize;

#[derive(Serialize)]
struct Exp5Point {
    programs: usize,
    results: Vec<Measurement>,
}

fn main() {
    let budget = ilp_budget(3);
    let net = table3_wan(9); // the 10th topology
    let config = RunConfig::default();
    let counts = [10usize, 20, 30, 40, 50];

    let points: Vec<Exp5Point> = counts
        .iter()
        .map(|&n| {
            let tdg = analyze(&workload(n));
            let suite = standard_suite(budget);
            Exp5Point { programs: n, results: run_suite(&tdg, &net, &suite, &config) }
        })
        .collect();
    if maybe_json(&points) {
        return;
    }

    println!("Exp#5 (Figure 9) — scalability on topology 10, 10..50 programs\n");
    let algos: Vec<String> = points[0].results.iter().map(|r| r.algorithm.clone()).collect();
    let header =
        std::iter::once("algorithm".to_owned()).chain(counts.iter().map(|n| format!("{n} progs")));

    let panel = |title: &str, cell: &dyn Fn(&Measurement) -> String| {
        let mut t = Table::new(header.clone());
        for (i, name) in algos.iter().enumerate() {
            t.row(std::iter::once(name.clone()).chain(points.iter().map(|p| cell(&p.results[i]))));
        }
        println!("({title})\n{}", t.render());
    };

    panel("a) per-packet byte overhead, bytes", &|m| {
        m.overhead_bytes.map_or("-".into(), |b| b.to_string())
    });
    panel("b) execution time, ms", &|m| fmt_ms(m.reported_ms, m.capped));
    panel("c) normalized FCT", &|m| m.fct_ratio.map_or("-".into(), |f| format!("{f:.3}")));
    panel("d) normalized goodput", &|m| m.goodput_ratio.map_or("-".into(), |g| format!("{g:.3}")));

    // Headline: Hermes execution time grows with the program count but
    // stays in milliseconds.
    let hermes: Vec<f64> = points
        .iter()
        .filter_map(|p| p.results.iter().find(|m| m.algorithm == "Hermes"))
        .map(|m| m.measured_ms)
        .collect();
    println!(
        "headline: Hermes heuristic time grows {:.1} ms -> {:.1} ms from 10 to 50 programs",
        hermes.first().copied().unwrap_or(0.0),
        hermes.last().copied().unwrap_or(0.0)
    );
}
