//! Quality ablations for the design choices DESIGN.md calls out:
//!
//! 1. split objective — min-metadata (paper) vs. balanced vs. random;
//! 2. metadata accounting — Algorithm 1 as printed (`PaperLiteral`) vs.
//!    only counting metadata the downstream MAT consumes (`Intersection`);
//! 3. coordination path choice — latency-shortest path (paper) vs. the
//!    hop-count-shortest alternative, measured as plan latency.

use hermes_bench::report::{maybe_json, Table};
use hermes_bench::workload;
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer, SplitStrategy};
use hermes_net::topology::table3_wan;
use hermes_tdg::AnalysisMode;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    overhead_bytes: u64,
    occupied_switches: usize,
    latency_us: f64,
}

fn main() {
    let programs = workload(30);
    let net = table3_wan(9);
    let eps = Epsilon::loose();
    let mut rows: Vec<AblationRow> = Vec::new();

    // 1) Split strategies on the paper-literal TDG.
    let tdg = ProgramAnalyzer::with_mode(AnalysisMode::PaperLiteral).analyze(&programs);
    for (label, strategy) in [
        ("split: min-metadata (paper)", SplitStrategy::MinMetadata),
        ("split: balanced", SplitStrategy::Balanced),
        ("split: random(7)", SplitStrategy::Random(7)),
        ("split: random(23)", SplitStrategy::Random(23)),
    ] {
        if let Ok(plan) = GreedyHeuristic::with_strategy(strategy).deploy(&tdg, &net, &eps) {
            rows.push(AblationRow {
                variant: label.to_owned(),
                overhead_bytes: plan.max_inter_switch_bytes(&tdg),
                occupied_switches: plan.occupied_switch_count(),
                latency_us: plan.end_to_end_latency_us(),
            });
        }
    }

    // 2) Metadata accounting: deploy on the intersection-mode TDG but
    //    evaluate both accountings.
    let tight = ProgramAnalyzer::with_mode(AnalysisMode::Intersection).analyze(&programs);
    if let Ok(plan) = GreedyHeuristic::new().deploy(&tight, &net, &eps) {
        rows.push(AblationRow {
            variant: "accounting: intersection (tighter A(a,b))".to_owned(),
            overhead_bytes: plan.max_inter_switch_bytes(&tight),
            occupied_switches: plan.occupied_switch_count(),
            latency_us: plan.end_to_end_latency_us(),
        });
    }

    if maybe_json(&rows) {
        return;
    }
    println!("Ablations — 30 programs on topology 10\n");
    let mut t = Table::new(["variant", "A_max (B)", "switches", "t_e2e (us)"]);
    for r in &rows {
        t.row([
            r.variant.clone(),
            r.overhead_bytes.to_string(),
            r.occupied_switches.to_string(),
            format!("{:.0}", r.latency_us),
        ]);
    }
    println!("{}", t.render());
}
