//! Exp#2 (Figure 6): per-packet byte overhead at scale.
//!
//! Deploys 50 concurrent programs (10 real + 40 synthetic) on each of the
//! ten Table III WAN topologies with every framework and reports `A_max`.
//!
//! `HERMES_PROGRAMS` overrides the workload size (default 50);
//! `HERMES_ILP_BUDGET_SECS` bounds the exhaustive solvers (default 3).

use hermes_baselines::standard_suite;
use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, ilp_budget, run_suite, workload, Measurement, RunConfig};
use hermes_net::topology::{table3_wan, TABLE3};
use serde::Serialize;

#[derive(Serialize)]
struct Exp2Point {
    topology: usize,
    results: Vec<Measurement>,
}

fn program_count() -> usize {
    std::env::var("HERMES_PROGRAMS").ok().and_then(|s| s.parse().ok()).unwrap_or(50)
}

fn main() {
    let budget = ilp_budget(3);
    let programs = program_count();
    let tdg = analyze(&workload(programs));
    let config = RunConfig::default();

    let points: Vec<Exp2Point> = (0..TABLE3.len())
        .map(|i| {
            let net = table3_wan(i);
            let suite = standard_suite(budget);
            Exp2Point { topology: i + 1, results: run_suite(&tdg, &net, &suite, &config) }
        })
        .collect();
    if maybe_json(&points) {
        return;
    }

    println!("Exp#2 (Figure 6) — per-packet byte overhead, {programs} programs, 10 WANs\n");
    let algos: Vec<String> = points[0].results.iter().map(|r| r.algorithm.clone()).collect();
    let mut t = Table::new(
        std::iter::once("algorithm".to_owned())
            .chain(points.iter().map(|p| format!("T{}", p.topology))),
    );
    for (i, name) in algos.iter().enumerate() {
        t.row(
            std::iter::once(name.clone()).chain(
                points
                    .iter()
                    .map(|p| p.results[i].overhead_bytes.map_or("-".into(), |b| b.to_string())),
            ),
        );
    }
    println!("{}", t.render());

    // Headline: Hermes vs the best non-Hermes framework, averaged.
    let avg = |name: &str| -> f64 {
        let vals: Vec<u64> = points
            .iter()
            .filter_map(|p| {
                p.results.iter().find(|m| m.algorithm == name).and_then(|m| m.overhead_bytes)
            })
            .collect();
        vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64
    };
    let hermes = avg("Hermes");
    let others: Vec<f64> =
        algos.iter().filter(|a| *a != "Hermes" && *a != "Optimal").map(|a| avg(a)).collect();
    let mean_other = others.iter().sum::<f64>() / others.len().max(1) as f64;
    if mean_other > 0.0 {
        println!(
            "headline: Hermes reduces the overhead by {:.0}% vs the mean of the other frameworks \
             (FP's cut-count objective can tie Hermes when zero-byte cuts exist)",
            (1.0 - hermes / mean_other) * 100.0
        );
    }
    let optimal = avg("Optimal");
    if optimal > 0.0 {
        println!(
            "heuristic vs Optimal(incumbent): {:.0}% higher on average",
            (hermes / optimal - 1.0) * 100.0
        );
    }
}
