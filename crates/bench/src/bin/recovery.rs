//! Recovery bench: journal cost and crash-recovery behaviour.
//!
//! Three measurements, all on the same two-program linear-3 workload the
//! recovery soak uses:
//!
//! - **append** — write-ahead journal append throughput over a realistic
//!   record mix (small transaction records punctuated by full plan
//!   snapshots), with compaction live;
//! - **replay** — journal replay latency as the record count grows
//!   (replay is what gates controller restart time);
//! - **crash points** — for a controller crash armed at *every*
//!   journal-write boundary of a deploy and of a staged migration:
//!   the recovery action taken, reconciliation/reinstall message count,
//!   and virtual-clock recovery latency per boundary.
//!
//! The run **fails (exit 1)** if any recovery errors or lands on a plan
//! that is neither exactly plan A, exactly plan B, nor nothing. Wall
//! -clock throughput numbers vary per host, so `--smoke` prints only the
//! virtual-clock/deterministic fields — CI double-runs it and diffs.
//! `--json` is recorded as `results/BENCH_recovery.json`.

use hermes_bench::report::{maybe_json, Table};
use hermes_core::{
    DeploymentAlgorithm, DeploymentPlan, Epsilon, GreedyHeuristic, IncrementalDeployer,
    ProgramAnalyzer, RedeployOptions,
};
use hermes_dataplane::library;
use hermes_net::{topology, Network};
use hermes_runtime::{
    replay_bytes, CrashTiming, DeploymentRuntime, FaultInjector, FaultProfile, Journal,
    JournalRecord, MigrationConfig, MigrationOutcome, RetryPolicy, RolloutOutcome,
    EVENT_SCHEMA_VERSION, JOURNAL_FORMAT_VERSION,
};
use hermes_tdg::Tdg;
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

struct Workload {
    tdg: Tdg,
    net: Network,
    plan_a: DeploymentPlan,
    plan_b: DeploymentPlan,
}

fn workload() -> Result<Workload, String> {
    let programs = library::real_programs();
    let tdg = ProgramAnalyzer::new().analyze(&programs[..2.min(programs.len())]);
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new()
        .deploy(&tdg, &net, &eps)
        .map_err(|e| format!("plan A infeasible: {e}"))?;
    let drained = *plan_a.occupied_switches().last().ok_or_else(|| "plan A is empty".to_owned())?;
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(&tdg, &plan_a, &tdg, &net, &eps, &RedeployOptions::excluding([drained]))
        .map_err(|e| format!("cannot drain {drained}: {e}"))?
        .plan;
    Ok(Workload { tdg, net, plan_a, plan_b })
}

/// Journal append throughput over a realistic record mix.
#[derive(Serialize)]
struct AppendStats {
    records: u64,
    bytes: usize,
    compactions: u64,
    elapsed_us: u64,
    records_per_sec: u64,
}

fn bench_append(w: &Workload, records: u64) -> AppendStats {
    let mut journal = Journal::new();
    let switch = w.plan_a.occupied_switches().first().copied();
    let artifacts = hermes_backend::config::generate(&w.tdg, &w.net, &w.plan_a);
    let start = Instant::now();
    for i in 0..records {
        let record = match (i % 16, switch) {
            // A snapshot every 16 records keeps compaction live.
            (15, _) => JournalRecord::Snapshot {
                epoch: i,
                tdg_fp: 0,
                plan_fp: 0,
                plan: w.plan_a.clone(),
                artifacts: artifacts.clone(),
                clock_us: i,
            },
            (n, Some(s)) if n % 2 == 0 => JournalRecord::Prepared { epoch: i, switch: s },
            (_, Some(s)) => JournalRecord::LeaseGranted { epoch: i, switch: s, until_us: i },
            _ => JournalRecord::EpochAdvanced { epoch: i },
        };
        journal.append(&record);
    }
    let elapsed_us = start.elapsed().as_micros() as u64;
    AppendStats {
        records,
        bytes: journal.bytes().len(),
        compactions: journal.compactions(),
        elapsed_us,
        records_per_sec: records.saturating_mul(1_000_000).checked_div(elapsed_us).unwrap_or(0),
    }
}

/// Replay latency at one journal size.
#[derive(Serialize)]
struct ReplayPoint {
    records_written: u64,
    records_replayed: usize,
    bytes: usize,
    replay_us: u64,
}

fn bench_replay(w: &Workload, sizes: &[u64]) -> Result<Vec<ReplayPoint>, String> {
    let mut points = Vec::new();
    for &size in sizes {
        // No compaction, so replay really walks `size` records.
        let mut journal = Journal::with_compact_threshold(usize::MAX);
        let switch = w.plan_a.occupied_switches().first().copied();
        for i in 0..size {
            match switch {
                Some(s) if i % 2 == 0 => {
                    journal.append(&JournalRecord::Prepared { epoch: i, switch: s })
                }
                _ => journal.append(&JournalRecord::EpochAdvanced { epoch: i }),
            }
        }
        let start = Instant::now();
        let replay = replay_bytes(journal.bytes()).map_err(|e| format!("replay: {e}"))?;
        let replay_us = start.elapsed().as_micros() as u64;
        points.push(ReplayPoint {
            records_written: size,
            records_replayed: replay.records.len(),
            bytes: journal.bytes().len(),
            replay_us,
        });
    }
    Ok(points)
}

/// Recovery behaviour with a crash armed at one journal boundary.
#[derive(Serialize)]
struct CrashPointStats {
    boundary: u64,
    timing: String,
    action: String,
    /// Control messages spent by the whole recovery (probes + reinstall).
    messages: u64,
    reinstalled: usize,
    forced: usize,
    unreachable: usize,
    /// Virtual-clock recovery latency — deterministic.
    recovery_us: u64,
}

enum Kind {
    Deploy,
    Migrate,
}

fn crash_points(w: &Workload, kind: &Kind) -> Result<Vec<CrashPointStats>, String> {
    let eps = Epsilon::loose();
    let run = |arm: Option<(u64, CrashTiming)>| -> Result<(DeploymentRuntime, bool), String> {
        let mut rt = DeploymentRuntime::new(
            w.net.clone(),
            eps,
            FaultInjector::new(0, FaultProfile::none()),
            RetryPolicy::default(),
        );
        match kind {
            Kind::Deploy => {
                if let Some((nth, timing)) = arm {
                    rt.injector_mut().arm_controller_crash_at(nth, timing);
                }
                let outcome = rt.rollout(&w.tdg, w.plan_a.clone());
                let crashed = matches!(outcome, RolloutOutcome::ControllerCrashed { .. });
                Ok((rt, crashed))
            }
            Kind::Migrate => {
                if !rt.rollout(&w.tdg, w.plan_a.clone()).is_committed() {
                    return Err("clean install of plan A failed".to_owned());
                }
                rt.set_injector(FaultInjector::new(0, FaultProfile::none()));
                if let Some((nth, timing)) = arm {
                    rt.injector_mut().arm_controller_crash_at(nth, timing);
                }
                let outcome = rt.migrate(&w.tdg, w.plan_b.clone(), &MigrationConfig::default());
                let crashed = matches!(outcome, MigrationOutcome::ControllerCrashed { .. });
                Ok((rt, crashed))
            }
        }
    };
    let (dry, _) = run(None)?;
    let writes = dry.injector().journal_writes();
    let mut points = Vec::new();
    for nth in 0..writes {
        let timing = if nth % 2 == 0 { CrashTiming::BeforeWrite } else { CrashTiming::AfterWrite };
        let (mut rt, crashed) = run(Some((nth, timing)))?;
        if !crashed {
            return Err(format!("boundary {nth}: the armed crash did not fire"));
        }
        let before = rt.messages_sent();
        let report = rt.recover(&w.tdg).map_err(|e| format!("boundary {nth}: recover: {e}"))?;
        let active = rt.active_plan();
        if !(active.is_none() || active == Some(&w.plan_a) || active == Some(&w.plan_b)) {
            return Err(format!("boundary {nth}: recovered to a mixed plan"));
        }
        points.push(CrashPointStats {
            boundary: nth,
            timing: format!("{timing:?}"),
            action: report.action.to_string(),
            messages: rt.messages_sent() - before,
            reinstalled: report.reinstalled,
            forced: report.forced,
            unreachable: report.unreachable,
            recovery_us: report.recovery_us,
        });
    }
    Ok(points)
}

#[derive(Serialize)]
struct Report {
    append: AppendStats,
    replay: Vec<ReplayPoint>,
    deploy_crash_points: Vec<CrashPointStats>,
    migration_crash_points: Vec<CrashPointStats>,
    /// Every crash point recovered to exactly-A, exactly-B, or nothing.
    bimodal: bool,
}

fn build_report() -> Result<Report, String> {
    let w = workload()?;
    Ok(Report {
        append: bench_append(&w, 20_000),
        replay: bench_replay(&w, &[100, 1_000, 10_000])?,
        deploy_crash_points: crash_points(&w, &Kind::Deploy)?,
        migration_crash_points: crash_points(&w, &Kind::Migrate)?,
        bimodal: true, // crash_points errors out otherwise
    })
}

/// `--golden`: the byte-exact journal of a clean deploy, hex-dumped with
/// the format and event-schema versions. CI diffs this against
/// `tests/fixtures/journal_golden.txt`, so bumping either version or
/// changing the wire format forces a reviewed fixture update.
fn print_golden() -> Result<(), String> {
    let w = workload()?;
    let mut rt = DeploymentRuntime::new(
        w.net.clone(),
        Epsilon::loose(),
        FaultInjector::disabled(),
        RetryPolicy::default(),
    );
    if !rt.rollout(&w.tdg, w.plan_a.clone()).is_committed() {
        return Err("golden deploy failed".to_owned());
    }
    let bytes = rt.journal().bytes();
    println!("journal_format_version={JOURNAL_FORMAT_VERSION}");
    println!("event_schema_version={EVENT_SCHEMA_VERSION}");
    println!("bytes={}", bytes.len());
    for chunk in bytes.chunks(32) {
        println!("{}", chunk.iter().map(|b| format!("{b:02x}")).collect::<String>());
    }
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--golden") {
        return match print_golden() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let report = match build_report() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if std::env::args().any(|a| a == "--smoke") {
        // Only deterministic fields: CI double-runs this and diffs.
        let fmt_points = |points: &[CrashPointStats]| {
            points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"b\":{},\"action\":\"{}\",\"msgs\":{},\"us\":{}}}",
                        p.boundary, p.action, p.messages, p.recovery_us
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{{\"append_records\":{},\"append_bytes\":{},\"compactions\":{},\
             \"replay\":{:?},\"deploy\":[{}],\"migration\":[{}],\"bimodal\":{}}}",
            report.append.records,
            report.append.bytes,
            report.append.compactions,
            report.replay.iter().map(|p| p.records_replayed).collect::<Vec<_>>(),
            fmt_points(&report.deploy_crash_points),
            fmt_points(&report.migration_crash_points),
            report.bimodal,
        );
    } else if !maybe_json(&report) {
        println!("Recovery bench — journal cost and crash recovery\n");
        println!(
            "append: {} records -> {} B, {} compactions, {} records/s",
            report.append.records,
            report.append.bytes,
            report.append.compactions,
            report.append.records_per_sec
        );
        let mut t = Table::new(["records", "bytes", "replay us"]);
        for p in &report.replay {
            t.row([p.records_replayed.to_string(), p.bytes.to_string(), p.replay_us.to_string()]);
        }
        println!("{}", t.render());
        for (name, points) in
            [("deploy", &report.deploy_crash_points), ("migration", &report.migration_crash_points)]
        {
            println!("crash points during {name}:");
            let mut t = Table::new(["boundary", "timing", "action", "msgs", "recovery us"]);
            for p in points {
                t.row([
                    p.boundary.to_string(),
                    p.timing.clone(),
                    p.action.clone(),
                    p.messages.to_string(),
                    p.recovery_us.to_string(),
                ]);
            }
            println!("{}", t.render());
        }
    }
    ExitCode::SUCCESS
}
