//! Figure 2: impact of the per-packet byte overhead on end-to-end FCT and
//! goodput, normalized to the zero-overhead run.
//!
//! Setup per §II-B: five switch hops, packet sizes 512/1024/1500 B,
//! metadata overhead swept from 28 to 108 bytes.

use hermes_bench::report::{maybe_json, Table};
use hermes_sim::testbed::{fig2_sweep, TestbedConfig, PACKET_SIZES};

fn main() {
    let config = TestbedConfig::default();
    let rows = fig2_sweep(&config);
    if maybe_json(&rows) {
        return;
    }

    println!("Figure 2 — per-packet byte overhead vs. end-to-end performance");
    println!(
        "({} hops, {} Gbps links, {} packets per flow, normalized to 0-byte overhead)\n",
        config.hops, config.rate_gbps, config.packets
    );

    let mut fct = Table::new(
        std::iter::once("overhead (B)".to_owned())
            .chain(PACKET_SIZES.iter().map(|s| format!("FCT x ({s} B pkts)"))),
    );
    let mut goodput = Table::new(
        std::iter::once("overhead (B)".to_owned())
            .chain(PACKET_SIZES.iter().map(|s| format!("goodput x ({s} B pkts)"))),
    );
    for row in &rows {
        fct.row(
            std::iter::once(row.overhead_bytes.to_string())
                .chain(row.per_size.iter().map(|p| format!("{:.3}", p.fct_ratio))),
        );
        goodput.row(
            std::iter::once(row.overhead_bytes.to_string())
                .chain(row.per_size.iter().map(|p| format!("{:.3}", p.goodput_ratio))),
        );
    }
    println!("(a) normalized flow completion time\n{}", fct.render());
    println!("(b) normalized goodput\n{}", goodput.render());

    // The §II-B headline numbers for context.
    let at_68 = rows.iter().find(|r| r.overhead_bytes == 68).expect("sweep covers 68 B");
    println!(
        "headline: 68 B of metadata -> +{:.0}% FCT / -{:.0}% goodput on 512 B packets",
        (at_68.per_size[0].fct_ratio - 1.0) * 100.0,
        (1.0 - at_68.per_size[0].goodput_ratio) * 100.0
    );
}
