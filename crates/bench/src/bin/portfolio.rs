//! Portfolio bench: anytime behaviour of the unified solver stack.
//!
//! On the ten-program library, compares the *sequential* exact pipeline
//! (greedy seed, then branch-over-assignments — the pre-portfolio
//! `OptimalSolver`) against 2- and 4-thread [`Portfolio`] races on
//! time-to-proven-optimal, and isolates the effect of incumbent sharing by
//! re-running the bare exact search with and without a greedy-published
//! bound (`nodes_explored` with the bound must be strictly lower).
//!
//! Modes:
//! - default: text tables (objective-over-time per race, speedups, pruning);
//! - `--json`: the same data as JSON (recorded as `results/BENCH_portfolio.json`);
//! - `--smoke`: fixed-seed determinism probe for CI — races the 2-thread
//!   portfolio under a 2 s budget and prints only timing-independent fields
//!   (winner, objective, proof status, plan), so two runs must be
//!   byte-identical.

use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, workload};
use hermes_core::{Epsilon, GreedyHeuristic, OptimalSolver, Portfolio, SearchContext, Solver};
use hermes_net::{topology, Network};
use serde::Serialize;
use std::time::Duration;

/// Budget generous enough that every configuration proves optimality on
/// the library scenarios; the measurements are times-to-proof, not caps.
const BUDGET: Duration = Duration::from_secs(60);
/// Timing repetitions; wall times report the minimum (plans and node
/// counts of the deterministic configurations do not vary).
const REPS: usize = 3;

#[derive(Serialize)]
struct IncumbentPoint {
    /// Milliseconds into the race at which this racer returned.
    at_ms: f64,
    solver: String,
    objective: Option<u64>,
    proven_optimal: bool,
}

#[derive(Serialize)]
struct RaceResult {
    label: String,
    racers: Vec<String>,
    winner: String,
    objective: u64,
    proven_optimal: bool,
    /// Total race wall time, including thread spawn/join overhead.
    wall_ms: f64,
    /// Earliest moment a racer held a proven-optimal plan — the anytime
    /// time-to-proven-optimal (the rest of `wall_ms` is join overhead).
    time_to_proven_ms: Option<f64>,
    speedup_vs_sequential: f64,
    /// Per-racer completion events ordered by time: the race's
    /// objective-over-time trajectory.
    objective_over_time: Vec<IncumbentPoint>,
}

#[derive(Serialize)]
struct SequentialResult {
    wall_ms: f64,
    nodes_explored: u64,
    objective: u64,
    proven_optimal: bool,
}

#[derive(Serialize)]
struct PruningEvidence {
    /// Bare exact search, no bound published.
    nodes_unbounded: u64,
    /// Same search after the greedy heuristic published its incumbent.
    nodes_with_greedy_bound: u64,
    strictly_lower: bool,
}

#[derive(Serialize)]
struct Scenario {
    topology: String,
    tdg_nodes: usize,
    tdg_edges: usize,
    sequential_exact: SequentialResult,
    races: Vec<RaceResult>,
    /// `None` when the optimum is zero (ablation would be vacuous).
    pruning: Option<PruningEvidence>,
}

#[derive(Serialize)]
struct Report {
    workload_programs: usize,
    budget_secs: u64,
    reps: usize,
    scenarios: Vec<Scenario>,
}

fn min_wall_ms(mut run: impl FnMut() -> Duration) -> f64 {
    (0..REPS).map(|_| run()).min().unwrap_or_default().as_secs_f64() * 1000.0
}

fn bench_scenario(name: &str, net: &Network) -> Scenario {
    let tdg = analyze(&workload(10));
    let eps = Epsilon::loose();

    // Sequential exact: greedy seed then exhaustive search, one thread.
    let sequential = OptimalSolver::new()
        .solve(&tdg, net, &eps, &SearchContext::with_time_limit(BUDGET))
        .expect("library workload is feasible");
    let seq_wall_ms = min_wall_ms(|| {
        OptimalSolver::new()
            .solve(&tdg, net, &eps, &SearchContext::with_time_limit(BUDGET))
            .expect("library workload is feasible")
            .stats
            .wall
    });

    // Incumbent-sharing ablation: the identical bare search with and
    // without a pre-published greedy bound. Skipped when the optimum is
    // zero — there a published bound of 0 prunes the whole tree trivially
    // while the unbounded run enumerates millions of nodes for nothing.
    let pruning = (sequential.objective > 0).then(|| {
        let nodes_unbounded = OptimalSolver::bare()
            .solve(&tdg, net, &eps, &SearchContext::with_time_limit(BUDGET))
            .expect("library workload is feasible")
            .stats
            .nodes_explored;
        let seeded_ctx = SearchContext::with_time_limit(BUDGET);
        GreedyHeuristic::new()
            .solve(&tdg, net, &eps, &seeded_ctx)
            .expect("library workload is feasible");
        let nodes_with_greedy_bound = OptimalSolver::bare()
            .solve(&tdg, net, &eps, &seeded_ctx)
            .map(|o| o.stats.nodes_explored)
            .unwrap_or(0); // the bound itself can already be optimal
        PruningEvidence {
            nodes_unbounded,
            nodes_with_greedy_bound,
            strictly_lower: nodes_with_greedy_bound < nodes_unbounded,
        }
    });

    // Portfolio races at two widths.
    let races =
        [("portfolio-x2", Portfolio::greedy_exact()), ("portfolio-x4", Portfolio::standard(4))]
            .into_iter()
            .map(|(label, portfolio)| {
                let time_to_proven = |race: &hermes_core::RaceReport| {
                    race.reports.iter().filter(|r| r.proven_optimal).map(|r| r.wall).min()
                };
                let mut best: Option<hermes_core::RaceReport> = None;
                let mut best_proven: Option<Duration> = None;
                for _ in 0..REPS {
                    let race = portfolio
                        .race(&tdg, net, &eps, &SearchContext::with_time_limit(BUDGET))
                        .expect("library workload is feasible");
                    best_proven = match (best_proven, time_to_proven(&race)) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    if best.as_ref().is_none_or(|b| race.wall < b.wall) {
                        best = Some(race);
                    }
                }
                let race = best.expect("REPS >= 1");
                let mut trajectory: Vec<IncumbentPoint> = race
                    .reports
                    .iter()
                    .map(|r| IncumbentPoint {
                        at_ms: r.wall.as_secs_f64() * 1000.0,
                        solver: r.name.clone(),
                        objective: r.objective,
                        proven_optimal: r.proven_optimal,
                    })
                    .collect();
                trajectory.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
                let wall_ms = race.wall.as_secs_f64() * 1000.0;
                RaceResult {
                    label: label.to_owned(),
                    racers: portfolio.racer_names().iter().map(|s| (*s).to_owned()).collect(),
                    winner: race.reports[race.winner].name.clone(),
                    objective: race.outcome.objective,
                    proven_optimal: race.outcome.proven_optimal,
                    wall_ms,
                    time_to_proven_ms: best_proven.map(|d| d.as_secs_f64() * 1000.0),
                    speedup_vs_sequential: seq_wall_ms
                        / best_proven
                            .map_or(wall_ms, |d| d.as_secs_f64() * 1000.0)
                            .max(f64::EPSILON),
                    objective_over_time: trajectory,
                }
            })
            .collect();

    Scenario {
        topology: name.to_owned(),
        tdg_nodes: tdg.node_count(),
        tdg_edges: tdg.edge_count(),
        sequential_exact: SequentialResult {
            wall_ms: seq_wall_ms,
            nodes_explored: sequential.stats.nodes_explored,
            objective: sequential.objective,
            proven_optimal: sequential.proven_optimal,
        },
        races,
        pruning,
    }
}

/// Fixed-seed CI probe: prints only timing-independent race output.
fn smoke() {
    let tdg = analyze(&workload(10));
    let net = topology::linear(3, 10.0);
    let race = Portfolio::greedy_exact()
        .race(
            &tdg,
            &net,
            &Epsilon::loose(),
            &SearchContext::with_time_limit(Duration::from_secs(2)),
        )
        .expect("library workload is feasible");
    #[derive(Serialize)]
    struct Smoke {
        winner: String,
        objective: u64,
        proven_optimal: bool,
        plan: hermes_core::DeploymentPlan,
    }
    let out = Smoke {
        winner: race.reports[race.winner].name.clone(),
        objective: race.outcome.objective,
        proven_optimal: race.outcome.proven_optimal,
        plan: race.outcome.plan,
    };
    println!("{}", serde_json::to_string(&out).expect("plan serializes"));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let scenarios: Vec<Scenario> = [
        ("linear-3", topology::linear(3, 10.0)),
        ("linear-4", topology::linear(4, 10.0)),
        ("star-3", topology::star(3, 10.0)),
    ]
    .iter()
    .map(|(name, net)| bench_scenario(name, net))
    .collect();
    let report =
        Report { workload_programs: 10, budget_secs: BUDGET.as_secs(), reps: REPS, scenarios };
    if maybe_json(&report) {
        return;
    }

    println!("Portfolio bench — ten-program library, budget {BUDGET:?}, min of {REPS} reps\n");
    let proven_ms =
        |r: &RaceResult| r.time_to_proven_ms.map_or("-".into(), |ms| format!("{ms:.2}"));
    let mut t = Table::new([
        "topology",
        "sequential ms",
        "x2 proven ms",
        "x2 speedup",
        "x4 proven ms",
        "x4 speedup",
        "objective",
        "proven",
    ]);
    for s in &report.scenarios {
        let x2 = &s.races[0];
        let x4 = &s.races[1];
        t.row([
            s.topology.clone(),
            format!("{:.2}", s.sequential_exact.wall_ms),
            proven_ms(x2),
            format!("{:.2}x", x2.speedup_vs_sequential),
            proven_ms(x4),
            format!("{:.2}x", x4.speedup_vs_sequential),
            x2.objective.to_string(),
            (s.sequential_exact.proven_optimal && x2.proven_optimal && x4.proven_optimal)
                .to_string(),
        ]);
    }
    println!("(a) time-to-proven-optimal\n{}", t.render());

    let mut p = Table::new(["topology", "nodes bare", "nodes w/ greedy bound", "strictly lower"]);
    for s in &report.scenarios {
        match &s.pruning {
            Some(pr) => p.row([
                s.topology.clone(),
                pr.nodes_unbounded.to_string(),
                pr.nodes_with_greedy_bound.to_string(),
                pr.strictly_lower.to_string(),
            ]),
            None => p.row([s.topology.clone(), "-".into(), "-".into(), "- (optimum is 0)".into()]),
        }
    }
    println!("(b) incumbent-sharing ablation (exact-search nodes explored)\n{}", p.render());

    println!("(c) objective over time, per race");
    for s in &report.scenarios {
        for race in &s.races {
            println!("  {} / {}:", s.topology, race.label);
            for point in &race.objective_over_time {
                println!(
                    "    t={:>8.2} ms  {:<12} objective={:<6} {}",
                    point.at_ms,
                    point.solver,
                    point.objective.map_or("-".into(), |o| o.to_string()),
                    if point.proven_optimal { "(proven)" } else { "" }
                );
            }
        }
    }

    // Headline on the paper's testbed (the first scenario) — the only one
    // where the exact search does real work; the trivial scenarios solve in
    // ~0.1 ms sequentially, below thread-spawn cost.
    let testbed = &report.scenarios[0];
    let x2 = &testbed.races[0];
    let ok = x2.objective == testbed.sequential_exact.objective
        && x2.time_to_proven_ms.is_some_and(|ms| ms <= testbed.sequential_exact.wall_ms);
    println!(
        "\nheadline ({}): 2-thread portfolio proves the exact objective {} ({} vs {:.2} ms sequential)",
        testbed.topology,
        if ok { "at least as fast as sequential exact" } else { "SLOWER than sequential exact" },
        x2.time_to_proven_ms.map_or("-".into(), |ms| format!("{ms:.2} ms")),
        testbed.sequential_exact.wall_ms,
    );
}
