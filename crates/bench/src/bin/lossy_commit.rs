//! Lossy-channel commit experiment: protocol cost vs. message loss.
//!
//! Rolls the real-program workload out through the epoch-fenced agent
//! protocol while sweeping the control channel's drop probability (with
//! duplication, reordering, and delay held at the lossy defaults), across
//! a seed sweep per point. Reports, per drop rate: how many runs
//! committed cleanly, committed after healing, or rolled back; the mean
//! control-plane messages per run; the mean retries per run; and the mean
//! virtual commit latency of runs that terminated Committed. The
//! interesting curve is messages and latency growing superlinearly with
//! loss while the outcome mix stays overwhelmingly Committed — retries,
//! idempotent replays, and leases buy reliability from an unreliable
//! channel at a measurable message cost.

use hermes_bench::analyze;
use hermes_bench::report::{maybe_json, Table};
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes_dataplane::library;
use hermes_net::topology;
use hermes_runtime::{
    ChannelProfile, DeploymentRuntime, Event, FaultInjector, FaultProfile, RetryPolicy,
    RolloutOutcome,
};
use serde::Serialize;

const SEEDS: u64 = 40;
const DROP_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

#[derive(Serialize)]
struct DropRateReport {
    drop_prob: f64,
    runs: u64,
    committed_clean: u64,
    committed_healed: u64,
    rolled_back: u64,
    mean_messages: f64,
    mean_retries: f64,
    mean_commit_latency_us: f64,
}

fn sweep(net: &hermes_net::Network, drop_prob: f64) -> DropRateReport {
    let tdg = analyze(&library::real_programs());
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new()
        .deploy(&tdg, net, &eps)
        .expect("workload deploys on the healthy topology");
    let profile = ChannelProfile { drop_prob, ..ChannelProfile::lossy() };

    let mut report = DropRateReport {
        drop_prob,
        runs: SEEDS,
        committed_clean: 0,
        committed_healed: 0,
        rolled_back: 0,
        mean_messages: 0.0,
        mean_retries: 0.0,
        mean_commit_latency_us: 0.0,
    };
    let mut messages: Vec<u64> = Vec::new();
    let mut retries: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();

    for seed in 0..SEEDS {
        // Faults off: the channel is the only adversary, so the curve
        // isolates the protocol's cost of unreliability.
        let injector = FaultInjector::new(seed, FaultProfile::none());
        let mut rt = DeploymentRuntime::new(net.clone(), eps, injector, RetryPolicy::default())
            .with_channel_profile(profile);
        let outcome = rt.rollout(&tdg, plan.clone());
        messages.push(rt.messages_sent());
        retries.push(rt.log().count(|e| matches!(e, Event::RetryScheduled { .. })) as u64);
        match outcome {
            RolloutOutcome::Committed { healed: false, .. } => {
                report.committed_clean += 1;
                latencies.push(rt.now_us());
            }
            RolloutOutcome::Committed { healed: true, .. } => {
                report.committed_healed += 1;
                latencies.push(rt.now_us());
            }
            RolloutOutcome::RolledBack { .. } => report.rolled_back += 1,
            RolloutOutcome::ControllerCrashed { .. } => {
                unreachable!("FaultProfile::none() never injects a controller crash")
            }
        }
    }

    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    report.mean_messages = mean(&messages);
    report.mean_retries = mean(&retries);
    report.mean_commit_latency_us = mean(&latencies);
    report
}

fn main() {
    let net = topology::fat_tree(4, 10.0);
    let reports: Vec<DropRateReport> = DROP_RATES.iter().map(|&drop| sweep(&net, drop)).collect();

    if maybe_json(&reports) {
        return;
    }

    let mut table = Table::new([
        "drop",
        "runs",
        "clean",
        "healed",
        "rolled back",
        "mean msgs",
        "mean retries",
        "mean commit (us)",
    ]);
    for r in &reports {
        table.row([
            format!("{:.2}", r.drop_prob),
            r.runs.to_string(),
            r.committed_clean.to_string(),
            r.committed_healed.to_string(),
            r.rolled_back.to_string(),
            format!("{:.1}", r.mean_messages),
            format!("{:.1}", r.mean_retries),
            format!("{:.0}", r.mean_commit_latency_us),
        ]);
    }
    println!(
        "Lossy commit: {SEEDS} seeds per drop rate on fattree:4 \
         (dup/reorder/delay at lossy defaults, faults off)\n"
    );
    print!("{}", table.render());
}
