//! Exp#1 (Figure 5): testbed experiments.
//!
//! Deploys 2–10 concurrent real programs on the three-switch linear
//! testbed with every framework, reporting the four panels: (a) per-packet
//! byte overhead, (b) execution time, (c) normalized FCT, (d) normalized
//! goodput (1024 B packets through the testbed simulator).
//!
//! `HERMES_ILP_BUDGET_SECS` bounds each ILP/exhaustive solve (default 5).

use hermes_baselines::standard_suite;
use hermes_bench::report::{fmt_ms, maybe_json, Table};
use hermes_bench::{analyze, ilp_budget, run_suite, workload, Measurement, RunConfig};
use hermes_net::topology;
use serde::Serialize;

#[derive(Serialize)]
struct Exp1Point {
    programs: usize,
    results: Vec<Measurement>,
}

fn main() {
    let budget = ilp_budget(5);
    let net = topology::linear(3, 10.0);
    let config = RunConfig::default();
    let counts = [2usize, 4, 6, 8, 10];

    let points: Vec<Exp1Point> = counts
        .iter()
        .map(|&n| {
            let tdg = analyze(&workload(n));
            let suite = standard_suite(budget);
            Exp1Point { programs: n, results: run_suite(&tdg, &net, &suite, &config) }
        })
        .collect();
    if maybe_json(&points) {
        return;
    }

    println!("Exp#1 (Figure 5) — testbed: 3-switch linear topology, 2..10 real programs");
    println!("(ILP/exhaustive budget: {budget:?}; override via HERMES_ILP_BUDGET_SECS)\n");

    let algos: Vec<String> = points[0].results.iter().map(|r| r.algorithm.clone()).collect();
    let header =
        std::iter::once("algorithm".to_owned()).chain(counts.iter().map(|n| format!("{n} progs")));

    let panel = |title: &str, cell: &dyn Fn(&Measurement) -> String| {
        let mut t = Table::new(header.clone());
        for (i, name) in algos.iter().enumerate() {
            t.row(std::iter::once(name.clone()).chain(points.iter().map(|p| cell(&p.results[i]))));
        }
        println!("({title})\n{}", t.render());
    };

    panel("a) per-packet byte overhead, bytes", &|m| {
        m.overhead_bytes.map_or("-".into(), |b| b.to_string())
    });
    panel("b) execution time, ms", &|m| fmt_ms(m.reported_ms, m.capped));
    panel("c) normalized FCT (1024 B packets)", &|m| {
        m.fct_ratio.map_or("-".into(), |f| format!("{f:.3}"))
    });
    panel("d) normalized goodput (1024 B packets)", &|m| {
        m.goodput_ratio.map_or("-".into(), |g| format!("{g:.3}"))
    });

    // Headline: Hermes vs the worst baseline at 10 programs.
    let last = &points.last().expect("non-empty").results;
    let hermes =
        last.iter().find(|m| m.algorithm == "Hermes").and_then(|m| m.overhead_bytes).unwrap_or(0);
    let worst = last.iter().filter_map(|m| m.overhead_bytes).max().unwrap_or(0);
    println!(
        "headline: at 10 programs Hermes saves {} bytes vs the worst framework",
        worst - hermes
    );
}
