//! Wire accounting: the paper's pairwise `A_max` vs. the bytes a packet
//! really carries hop by hop (pass-through carriage included), plus the
//! end-to-end impact simulated over each plan's actual coordination path.
//!
//! This analysis extends Exp#1: the pairwise metric the paper optimizes
//! *understates* the on-wire load whenever metadata produced on switch 1
//! is consumed on switch 3 — it must also transit switch 2.

use hermes_backend::{
    config::generate,
    emulator,
    simulate::{simulate_plan, PlanFlowConfig},
};
use hermes_baselines::standard_suite;
use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, ilp_budget, workload};
use hermes_core::Epsilon;
use hermes_net::topology;
use serde::Serialize;

#[derive(Serialize)]
struct WireRow {
    algorithm: String,
    pairwise_amax: u64,
    max_wire_bytes: u32,
    fct_ratio: f64,
    goodput_ratio: f64,
    switches_traversed: usize,
}

fn main() {
    let tdg = analyze(&workload(10));
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let config = PlanFlowConfig { packets: 5_000, ..Default::default() };

    let mut rows = Vec::new();
    for algo in standard_suite(ilp_budget(3)) {
        let Ok(plan) = algo.deploy(&tdg, &net, &eps) else {
            continue;
        };
        let artifacts = generate(&tdg, &net, &plan);
        let trace = emulator::run_distributed(&tdg, &plan, &artifacts, emulator::test_packet(0));
        let Some(sim) = simulate_plan(&tdg, &net, &plan, &artifacts, &config) else {
            continue;
        };
        rows.push(WireRow {
            algorithm: algo.name().to_owned(),
            pairwise_amax: plan.max_inter_switch_bytes(&tdg),
            max_wire_bytes: trace.max_wire_bytes(),
            fct_ratio: sim.fct_ratio(),
            goodput_ratio: sim.goodput_ratio(),
            switches_traversed: sim.traversed.len(),
        });
    }
    if maybe_json(&rows) {
        return;
    }

    println!("Wire accounting — 10 real programs on the 3-switch testbed\n");
    let mut t = Table::new([
        "algorithm",
        "pairwise A_max (B)",
        "max on-wire (B)",
        "FCT x",
        "goodput x",
        "switches",
    ]);
    for r in &rows {
        t.row([
            r.algorithm.clone(),
            r.pairwise_amax.to_string(),
            r.max_wire_bytes.to_string(),
            format!("{:.3}", r.fct_ratio),
            format!("{:.3}", r.goodput_ratio),
            r.switches_traversed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "note: the pairwise objective can differ from the wire load in both directions —\n\
         pass-through hops add bytes it does not see, while fields shared by several\n\
         crossing edges are double-counted by its per-edge sum."
    );
}
