//! Exp#6: switch resource consumption.
//!
//! Deploys the ten measurement sketches with SPEED and Hermes on the
//! testbed and compares the switch resources their plans consume against
//! the ground truth (the summed standalone consumption of each sketch).
//! The paper's finding — Hermes inserts no additional logic, so beyond
//! the baseline cost of inter-switch coordination it uses no extra
//! resources — shows up here as `deployed == merged-TDG` resource, with
//! the merge's redundancy elimination actually *saving* resources versus
//! the standalone ground truth.

use hermes_baselines::{IlpBaseline, IlpConfig};
use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, ilp_budget};
use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes_dataplane::library::sketches;
use hermes_net::topology;
use serde::Serialize;

#[derive(Serialize)]
struct Exp6Report {
    ground_truth_units: f64,
    merged_tdg_units: f64,
    hermes_deployed_units: f64,
    speed_deployed_units: f64,
    hermes_extra_units: f64,
    speed_extra_units: f64,
}

fn main() {
    let programs = sketches::all();
    let ground_truth: f64 = programs.iter().map(|p| p.total_resource()).sum();
    let tdg = analyze(&programs);
    let merged = tdg.total_resource();
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();

    let deployed_units = |plan: &hermes_core::DeploymentPlan| -> f64 {
        plan.placements().iter().map(|p| p.fraction).sum()
    };
    let hermes_plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("sketches deploy");
    let speed_plan =
        IlpBaseline::speed(IlpConfig { time_limit: ilp_budget(5), ..Default::default() })
            .deploy(&tdg, &net, &eps)
            .expect("sketches deploy");

    // Clamp float dust: a deployment cannot consume negative extras.
    let extra = |deployed: f64| -> f64 {
        let delta = deployed - merged;
        if delta.abs() < 1e-9 {
            0.0
        } else {
            delta
        }
    };
    let report = Exp6Report {
        ground_truth_units: ground_truth,
        merged_tdg_units: merged,
        hermes_deployed_units: deployed_units(&hermes_plan),
        speed_deployed_units: deployed_units(&speed_plan),
        hermes_extra_units: extra(deployed_units(&hermes_plan)),
        speed_extra_units: extra(deployed_units(&speed_plan)),
    };
    if maybe_json(&report) {
        return;
    }

    println!("Exp#6 — switch resource consumption, ten sketches on the testbed\n");
    let mut t = Table::new(["quantity", "stage-capacity units"]);
    t.row(["ground truth (10 standalone sketches)", &format!("{ground_truth:.2}")]);
    t.row(["merged TDG (shared 5-tuple hash deduplicated)", &format!("{merged:.2}")]);
    t.row(["deployed by Hermes", &format!("{:.2}", report.hermes_deployed_units)]);
    t.row(["deployed by SPEED", &format!("{:.2}", report.speed_deployed_units)]);
    t.row(["Hermes extra vs merged TDG", &format!("{:.2}", report.hermes_extra_units)]);
    t.row(["SPEED extra vs merged TDG", &format!("{:.2}", report.speed_extra_units)]);
    println!("{}", t.render());
    println!(
        "finding: Hermes deploys exactly the merged TDG's resources ({:.2} extra units) —\n\
         no additional switch logic is inserted by the coordination.",
        report.hermes_extra_units
    );
}
