//! Table III: the ten WAN topologies used by the large-scale simulation,
//! with the evaluation settings applied (50 % programmable switches,
//! 1 µs switch latency, 1–10 ms link latency).

use hermes_bench::report::{maybe_json, Table};
use hermes_net::topology::{table3_wan, TABLE3};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    id: usize,
    nodes: usize,
    edges: usize,
    programmable: usize,
    connected: bool,
}

fn main() {
    let rows: Vec<Row> = (0..TABLE3.len())
        .map(|i| {
            let net = table3_wan(i);
            Row {
                id: i + 1,
                nodes: net.switch_count(),
                edges: net.link_count(),
                programmable: net.programmable_switches().len(),
                connected: net.is_connected(),
            }
        })
        .collect();
    if maybe_json(&rows) {
        return;
    }
    println!("Table III — topologies used by the simulation\n");
    let mut t = Table::new(["topology", "# nodes", "# edges", "# programmable", "connected"]);
    for r in &rows {
        t.row([
            r.id.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            r.programmable.to_string(),
            r.connected.to_string(),
        ]);
    }
    println!("{}", t.render());
}
