//! Migration bench: staged live reconfiguration vs all-at-once redeploy.
//!
//! Each scenario builds a metadata-chain workload on a capacity-bound
//! topology, installs plan A (greedy), drains plan A's last occupied
//! switch into plan B (incremental redeploy with that switch excluded),
//! and then reconfigures A→B two ways on clean runtimes:
//!
//! - **staged** — [`MigrationScheduler`] orders the per-switch commits to
//!   minimize the peak transient `A_max`; the runtime executes the
//!   schedule step by step through the mixed-epoch gate
//!   ([`DeploymentRuntime::migrate_with_schedule`]);
//! - **all-at-once** — a plain [`DeploymentRuntime::rollout`] of plan B,
//!   whose commit window walks the switches in ascending id order.
//!
//! Reported per scenario: reconfiguration time (virtual clock), control
//! messages, and the transient-overhead curve (`A_max` after each staged
//! step) against the all-at-once peak. The run **fails (exit 1)** if any
//! scenario's staged peak exceeds its all-at-once peak or either
//! execution does not land on plan B.
//!
//! Everything here runs on the virtual clock with a clean channel, so the
//! full report — including `--json` (recorded as
//! `results/BENCH_migration.json`) and `--smoke` — is byte-deterministic.

use hermes_bench::report::{maybe_json, Table};
use hermes_core::test_support::chain_tdg;
use hermes_core::{
    DeploymentAlgorithm, Epsilon, GreedyHeuristic, IncrementalDeployer, MigrationOrder,
    MigrationProblem, MigrationScheduler, RedeployOptions, SearchContext,
};
use hermes_net::{topology, Network, SwitchId};
use hermes_runtime::{DeploymentRuntime, FaultInjector, MigrationConfig, RetryPolicy};
use hermes_tdg::Tdg;
use serde::Serialize;
use std::process::ExitCode;
use std::time::Duration;

/// Schedule-search budget; the scenarios have at most a handful of active
/// switches, so both planners finish far inside it.
const PLAN_BUDGET: Duration = Duration::from_secs(5);

/// Reshapes every switch to `stages` pipeline stages of `cap` capacity so
/// packing binds (stock capacities would fit each workload on one switch
/// and make every transient curve flat zero).
fn shape(mut net: Network, stages: usize, cap: f64) -> Network {
    let ids: Vec<SwitchId> = net.switch_ids().collect();
    for id in ids {
        let sw = net.switch_mut(id);
        sw.stages = stages;
        sw.stage_capacity = cap;
    }
    net
}

/// The benched instances: name, topology, and a chain workload whose MATs
/// only read/write metadata — the shape the mixed-epoch gate admits under
/// any commit order, so both reconfiguration styles can execute.
fn scenarios() -> Vec<(String, Network, Tdg)> {
    vec![
        (
            "linear-5".to_owned(),
            shape(topology::linear(5, 10.0), 5, 0.45),
            chain_tdg(&[6, 2, 9, 3, 5, 4, 7, 2, 8], 0.4),
        ),
        (
            "star-4".to_owned(),
            shape(topology::star(4, 10.0), 5, 0.45),
            chain_tdg(&[4, 7, 3, 8, 2, 6, 5], 0.4),
        ),
        (
            "fattree-4".to_owned(),
            shape(topology::fat_tree(4, 10.0), 4, 0.45),
            chain_tdg(&[9, 2, 7, 4, 8, 3, 6, 5, 2, 7, 4], 0.4),
        ),
    ]
}

/// One reconfiguration execution, measured on the virtual clock.
#[derive(Serialize)]
struct ExecStats {
    outcome: String,
    /// Plan B installed and active at the end.
    ok: bool,
    reconfig_us: u64,
    messages: u64,
}

#[derive(Serialize)]
struct ScenarioReport {
    name: String,
    switches: usize,
    mats: usize,
    drained_switch: String,
    from_amax: u64,
    to_amax: u64,
    planner: String,
    staged_steps: usize,
    staged_peak_amax: u64,
    all_at_once_peak_amax: Option<u64>,
    /// `A_max` before the first step, then after every staged step.
    transient_curve: Vec<u64>,
    staged: ExecStats,
    all_at_once: ExecStats,
}

#[derive(Serialize)]
struct Report {
    plan_budget_secs: u64,
    scenarios: Vec<ScenarioReport>,
    /// Every scenario landed on plan B both ways and staged never peaked
    /// above all-at-once.
    staged_never_worse: bool,
}

fn clean_runtime(net: &Network, eps: Epsilon) -> DeploymentRuntime {
    DeploymentRuntime::new(net.clone(), eps, FaultInjector::disabled(), RetryPolicy::default())
}

fn run_scenario(name: &str, net: &Network, tdg: &Tdg) -> Result<ScenarioReport, String> {
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new()
        .deploy(tdg, net, &eps)
        .map_err(|e| format!("{name}: plan A infeasible: {e}"))?;
    // Drain the highest-id occupied switch: its MATs re-home onto empty
    // switches, so every make-before-break staging window fits.
    let drained = *plan_a
        .occupied_switches()
        .last()
        .ok_or_else(|| format!("{name}: plan A occupies no switches"))?;
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(tdg, &plan_a, tdg, net, &eps, &RedeployOptions::excluding([drained]))
        .map_err(|e| format!("{name}: cannot drain {drained}: {e}"))?
        .plan;
    if plan_b == plan_a {
        return Err(format!("{name}: draining {drained} changed nothing"));
    }

    let schedule = {
        let problem = MigrationProblem { tdg, net, from: &plan_a, to: &plan_b };
        let ctx = SearchContext::with_time_limit(PLAN_BUDGET);
        MigrationScheduler::with_order(MigrationOrder::Auto)
            .plan(&problem, &ctx)
            .map_err(|e| format!("{name}: cannot schedule: {e}"))?
    };

    // Staged execution.
    let mut rt = clean_runtime(net, eps);
    if !rt.rollout(tdg, plan_a.clone()).is_committed() {
        return Err(format!("{name}: clean install of plan A failed"));
    }
    let (t0, m0) = (rt.now_us(), rt.messages_sent());
    let outcome =
        rt.migrate_with_schedule(tdg, plan_b.clone(), &schedule, &MigrationConfig::default());
    let staged = ExecStats {
        ok: outcome.is_migrated() && rt.active_plan() == Some(&plan_b),
        outcome: outcome.to_string(),
        reconfig_us: rt.now_us() - t0,
        messages: rt.messages_sent() - m0,
    };

    // All-at-once execution: same A, then a plain rollout of B.
    let mut rt = clean_runtime(net, eps);
    if !rt.rollout(tdg, plan_a.clone()).is_committed() {
        return Err(format!("{name}: clean install of plan A failed"));
    }
    let (t0, m0) = (rt.now_us(), rt.messages_sent());
    let outcome = rt.rollout(tdg, plan_b.clone());
    let all_at_once = ExecStats {
        ok: outcome.is_committed() && rt.active_plan() == Some(&plan_b),
        outcome: outcome.to_string(),
        reconfig_us: rt.now_us() - t0,
        messages: rt.messages_sent() - m0,
    };

    Ok(ScenarioReport {
        name: name.to_owned(),
        switches: net.switch_count(),
        mats: tdg.node_count(),
        drained_switch: drained.to_string(),
        from_amax: schedule.from_amax,
        to_amax: schedule.to_amax,
        planner: schedule.planner.clone(),
        staged_steps: schedule.steps.len(),
        staged_peak_amax: schedule.peak_transient_amax,
        all_at_once_peak_amax: schedule.all_at_once_peak,
        transient_curve: schedule.transient_curve(),
        staged,
        all_at_once,
    })
}

fn main() -> ExitCode {
    let mut reports = Vec::new();
    for (name, net, tdg) in scenarios() {
        match run_scenario(&name, &net, &tdg) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let staged_never_worse = reports.iter().all(|r| {
        r.staged.ok
            && r.all_at_once.ok
            && r.all_at_once_peak_amax.is_none_or(|peak| r.staged_peak_amax <= peak)
    });
    let report =
        Report { plan_budget_secs: PLAN_BUDGET.as_secs(), scenarios: reports, staged_never_worse };

    if std::env::args().any(|a| a == "--smoke") {
        // Compact single-line summary; byte-identical across runs, used
        // by CI's double-run determinism diff.
        let peaks: Vec<String> = report
            .scenarios
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"staged_peak\":{},\"all_at_once_peak\":{},\
                     \"curve\":{:?},\"staged_us\":{},\"all_at_once_us\":{},\
                     \"staged_msgs\":{},\"all_at_once_msgs\":{}}}",
                    r.name,
                    r.staged_peak_amax,
                    r.all_at_once_peak_amax.map_or(-1i64, |p| p as i64),
                    r.transient_curve,
                    r.staged.reconfig_us,
                    r.all_at_once.reconfig_us,
                    r.staged.messages,
                    r.all_at_once.messages,
                )
            })
            .collect();
        println!(
            "{{\"staged_never_worse\":{},\"scenarios\":[{}]}}",
            report.staged_never_worse,
            peaks.join(",")
        );
    } else if !maybe_json(&report) {
        println!("Migration bench — staged vs all-at-once reconfiguration\n");
        let mut t = Table::new([
            "scenario",
            "steps",
            "staged peak B",
            "all-at-once peak B",
            "staged us",
            "all-at-once us",
            "staged msgs",
            "all-at-once msgs",
        ]);
        for r in &report.scenarios {
            t.row([
                r.name.clone(),
                r.staged_steps.to_string(),
                r.staged_peak_amax.to_string(),
                r.all_at_once_peak_amax.map_or("-".to_owned(), |p| p.to_string()),
                r.staged.reconfig_us.to_string(),
                r.all_at_once.reconfig_us.to_string(),
                r.staged.messages.to_string(),
                r.all_at_once.messages.to_string(),
            ]);
        }
        println!("{}", t.render());
        for r in &report.scenarios {
            println!(
                "{}: drained {}, A_max {} -> {} B, planner {}, transient curve {:?}",
                r.name, r.drained_switch, r.from_amax, r.to_amax, r.planner, r.transient_curve
            );
        }
    }

    if report.staged_never_worse {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: staged migration peaked above all-at-once (or an execution failed)");
        ExitCode::FAILURE
    }
}
