//! Exp#4 (Figure 8): impact on end-to-end performance at scale.
//!
//! Takes the Exp#2 deployments and pushes a 1024-byte-packet flow carrying
//! each framework's `A_max` through the testbed simulator, reporting
//! normalized FCT and goodput per topology.

use hermes_baselines::standard_suite;
use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, ilp_budget, run_suite, workload, Measurement, RunConfig};
use hermes_net::topology::{table3_wan, TABLE3};
use serde::Serialize;

#[derive(Serialize)]
struct Exp4Point {
    topology: usize,
    results: Vec<Measurement>,
}

fn main() {
    let budget = ilp_budget(3);
    let programs: usize =
        std::env::var("HERMES_PROGRAMS").ok().and_then(|s| s.parse().ok()).unwrap_or(50);
    let tdg = analyze(&workload(programs));
    let config = RunConfig::default();

    let points: Vec<Exp4Point> = (0..TABLE3.len())
        .map(|i| {
            let net = table3_wan(i);
            let suite = standard_suite(budget);
            Exp4Point { topology: i + 1, results: run_suite(&tdg, &net, &suite, &config) }
        })
        .collect();
    if maybe_json(&points) {
        return;
    }

    println!(
        "Exp#4 (Figure 8) — end-to-end impact of {programs}-program deployments (1024 B packets)\n"
    );
    let algos: Vec<String> = points[0].results.iter().map(|r| r.algorithm.clone()).collect();
    let header = std::iter::once("algorithm".to_owned())
        .chain(points.iter().map(|p| format!("T{}", p.topology)));

    let mut fct = Table::new(header.clone());
    let mut goodput = Table::new(header);
    for (i, name) in algos.iter().enumerate() {
        fct.row(std::iter::once(name.clone()).chain(
            points.iter().map(|p| p.results[i].fct_ratio.map_or("-".into(), |f| format!("{f:.3}"))),
        ));
        goodput.row(
            std::iter::once(name.clone()).chain(
                points
                    .iter()
                    .map(|p| p.results[i].goodput_ratio.map_or("-".into(), |g| format!("{g:.3}"))),
            ),
        );
    }
    println!("(a) normalized FCT\n{}", fct.render());
    println!("(b) normalized goodput\n{}", goodput.render());

    // Headline: FCT overhead (ratio - 1) of the worst framework vs Hermes.
    let mean_overhead = |name: &str| -> f64 {
        let vals: Vec<f64> = points
            .iter()
            .filter_map(|p| p.results.iter().find(|m| m.algorithm == name))
            .filter_map(|m| m.fct_ratio)
            .map(|f| f - 1.0)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let hermes = mean_overhead("Hermes");
    let worst = algos.iter().map(|a| mean_overhead(a)).fold(0.0, f64::max);
    if hermes > 0.0 {
        println!(
            "headline: worst framework's FCT overhead is {:.0}% higher than Hermes's",
            (worst / hermes - 1.0) * 100.0
        );
    } else {
        println!("headline: Hermes adds no measurable FCT overhead on this workload");
    }
}
