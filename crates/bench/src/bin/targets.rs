//! Heterogeneous-target bench: the cost/performance frontier per target mix.
//!
//! Applies each built-in target spec (`tofino`, `smartnic`, `soft`, and the
//! three-way mix) to the linear testbed and, per workload size, measures
//! every frontier solver's wall time, `A_max`, and feasibility. The result
//! is the per-target frontier the ISSUE asks for: what retargeting the
//! same topology does to solve time and coordination overhead.
//!
//! Modes:
//! - default: text tables;
//! - `--json`: the same data as JSON (recorded as `results/BENCH_targets.json`);
//! - `--smoke`: fixed-seed determinism probe for CI — deterministic fields
//!   only (target, objective, plan), so two runs must be byte-identical.

use hermes_bench::report::{maybe_json, Table};
use hermes_bench::{analyze, workload};
use hermes_core::{Epsilon, GreedyHeuristic, MilpHermes, OptimalSolver, SearchContext, Solver};
use hermes_net::{parse_target, topology, Network};
use serde::Serialize;
use std::time::Duration;

/// Per-solver budget; the instances are small enough that the exact
/// search proves optimality well inside it on hardware targets.
const BUDGET: Duration = Duration::from_secs(5);
/// Timing repetitions; wall times report the minimum.
const REPS: usize = 3;
/// The target specs under comparison, in report order.
const TARGET_SPECS: &[&str] = &["tofino", "smartnic", "soft", "mix:tofino+smartnic+soft"];
/// Library workload sizes per frontier point.
const WORKLOADS: &[usize] = &[4, 7, 10];

fn retargeted(spec: &str) -> Network {
    let mut net = topology::linear(3, 10.0);
    parse_target(spec).expect("specs above are valid").apply(&mut net);
    net
}

#[derive(Serialize)]
struct SolverPoint {
    solver: String,
    feasible: bool,
    /// `A_max` in bytes; `None` when the solver found no plan.
    objective: Option<u64>,
    proven_optimal: bool,
    wall_ms: f64,
}

#[derive(Serialize)]
struct FrontierPoint {
    programs: usize,
    tdg_nodes: usize,
    total_resource: f64,
    solvers: Vec<SolverPoint>,
}

#[derive(Serialize)]
struct TargetFrontier {
    target: String,
    /// Aggregate switch capacity under this targeting (budget-clamped).
    network_capacity: f64,
    points: Vec<FrontierPoint>,
    /// Fraction of (workload, solver) cells that produced a plan.
    feasibility_rate: f64,
}

#[derive(Serialize)]
struct Report {
    topology: String,
    budget_secs: u64,
    reps: usize,
    frontiers: Vec<TargetFrontier>,
}

fn solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(GreedyHeuristic::new()),
        Box::new(OptimalSolver::new()),
        Box::new(MilpHermes::default()),
    ]
}

fn frontier(spec: &str) -> TargetFrontier {
    let net = retargeted(spec);
    let eps = Epsilon::loose();
    let network_capacity: f64 =
        net.switch_ids().map(|s| net.switch(s).total_capacity()).sum::<f64>();
    let mut points = Vec::new();
    let (mut cells, mut feasible_cells) = (0usize, 0usize);
    for &programs in WORKLOADS {
        let tdg = analyze(&workload(programs));
        let stats = hermes_tdg::stats(&tdg);
        let mut rows = Vec::new();
        for solver in solvers() {
            let mut best: Option<hermes_core::SolveOutcome> = None;
            let mut wall = Duration::MAX;
            for _ in 0..REPS {
                match solver.solve(&tdg, &net, &eps, &SearchContext::with_time_limit(BUDGET)) {
                    Ok(outcome) => {
                        wall = wall.min(outcome.stats.wall);
                        best = Some(outcome);
                    }
                    Err(_) => break,
                }
            }
            cells += 1;
            feasible_cells += usize::from(best.is_some());
            rows.push(SolverPoint {
                solver: solver.name().to_owned(),
                feasible: best.is_some(),
                objective: best.as_ref().map(|o| o.objective),
                proven_optimal: best.as_ref().is_some_and(|o| o.proven_optimal),
                wall_ms: if wall == Duration::MAX { 0.0 } else { wall.as_secs_f64() * 1000.0 },
            });
        }
        points.push(FrontierPoint {
            programs,
            tdg_nodes: tdg.node_count(),
            total_resource: stats.total_resource,
            solvers: rows,
        });
    }
    TargetFrontier {
        target: spec.to_owned(),
        network_capacity,
        points,
        feasibility_rate: feasible_cells as f64 / cells.max(1) as f64,
    }
}

/// Fixed-seed CI probe: per-target greedy plan on the six-program
/// library workload — deterministic fields only, no wall times.
fn smoke() {
    #[derive(Serialize)]
    struct SmokeRow {
        target: String,
        feasible: bool,
        objective: Option<u64>,
        plan: Option<hermes_core::DeploymentPlan>,
    }
    let tdg = analyze(&workload(6));
    let eps = Epsilon::loose();
    let rows: Vec<SmokeRow> = TARGET_SPECS
        .iter()
        .map(|spec| {
            let net = retargeted(spec);
            let outcome = GreedyHeuristic::new()
                .solve(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(2)))
                .ok();
            SmokeRow {
                target: (*spec).to_owned(),
                feasible: outcome.is_some(),
                objective: outcome.as_ref().map(|o| o.objective),
                plan: outcome.map(|o| o.plan),
            }
        })
        .collect();
    println!("{}", serde_json::to_string(&rows).expect("plans serialize"));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let report = Report {
        topology: "linear-3".to_owned(),
        budget_secs: BUDGET.as_secs(),
        reps: REPS,
        frontiers: TARGET_SPECS.iter().map(|spec| frontier(spec)).collect(),
    };
    if maybe_json(&report) {
        return;
    }
    println!("Target frontier bench — linear-3 testbed, budget {BUDGET:?}, min of {REPS} reps\n");
    for f in &report.frontiers {
        println!(
            "target {} (network capacity {:.1} units, feasibility {:.0}%)",
            f.target,
            f.network_capacity,
            f.feasibility_rate * 100.0
        );
        let mut t = Table::new(["programs", "solver", "A_max (B)", "proven", "wall ms"]);
        for p in &f.points {
            for s in &p.solvers {
                t.row([
                    p.programs.to_string(),
                    s.solver.clone(),
                    s.objective.map_or("-".into(), |o| o.to_string()),
                    s.proven_optimal.to_string(),
                    format!("{:.2}", s.wall_ms),
                ]);
            }
        }
        println!("{}", t.render());
    }
}
