//! Exp#3 (Figure 7): execution time at scale.
//!
//! Same setup as Exp#2; reports per-framework wall-clock deployment time.
//! Solver-backed frameworks whose instance exceeds the practical size
//! guard are reported at the 10⁷ ms cap, exactly like the paper's bars
//! for runs exceeding two hours.

use hermes_baselines::standard_suite;
use hermes_bench::report::{fmt_ms, maybe_json, Table};
use hermes_bench::{analyze, ilp_budget, run_suite, workload, Measurement, RunConfig};
use hermes_net::topology::{table3_wan, TABLE3};
use serde::Serialize;

#[derive(Serialize)]
struct Exp3Point {
    topology: usize,
    results: Vec<Measurement>,
}

fn main() {
    let budget = ilp_budget(3);
    let programs: usize =
        std::env::var("HERMES_PROGRAMS").ok().and_then(|s| s.parse().ok()).unwrap_or(50);
    let tdg = analyze(&workload(programs));
    let config = RunConfig::default();

    let points: Vec<Exp3Point> = (0..TABLE3.len())
        .map(|i| {
            let net = table3_wan(i);
            let suite = standard_suite(budget);
            Exp3Point { topology: i + 1, results: run_suite(&tdg, &net, &suite, &config) }
        })
        .collect();
    if maybe_json(&points) {
        return;
    }

    println!("Exp#3 (Figure 7) — execution time (ms), {programs} programs, 10 WANs");
    println!("(capped entries mirror the paper's 10^7 ms bars for >2 h ILP runs)\n");
    let algos: Vec<String> = points[0].results.iter().map(|r| r.algorithm.clone()).collect();
    let mut t = Table::new(
        std::iter::once("algorithm".to_owned())
            .chain(points.iter().map(|p| format!("T{}", p.topology))),
    );
    for (i, name) in algos.iter().enumerate() {
        t.row(
            std::iter::once(name.clone()).chain(
                points.iter().map(|p| fmt_ms(p.results[i].reported_ms, p.results[i].capped)),
            ),
        );
    }
    println!("{}", t.render());

    let hermes_ms: f64 = points
        .iter()
        .filter_map(|p| p.results.iter().find(|m| m.algorithm == "Hermes"))
        .map(|m| m.measured_ms)
        .sum::<f64>()
        / points.len() as f64;
    println!(
        "headline: the Hermes heuristic averages {:.1} ms — orders of magnitude below the ILP cap",
        hermes_ms
    );
}
