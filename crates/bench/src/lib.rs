//! Experiment harness regenerating every table and figure of the paper.
//!
//! One binary per artifact (run with `cargo run -p hermes-bench --bin …`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2` | Figure 2 — overhead vs. normalized FCT/goodput |
//! | `table3` | Table III — the ten WAN topologies |
//! | `exp1` | Figure 5 — testbed: overhead, time, FCT, goodput vs. #programs |
//! | `exp2` | Figure 6 — per-packet byte overhead at scale |
//! | `exp3` | Figure 7 — execution time at scale |
//! | `exp4` | Figure 8 — end-to-end FCT/goodput at scale |
//! | `exp5` | Figure 9 — scalability on topology 10 |
//! | `exp6` | switch resource consumption (sketches) |
//!
//! This library hosts the shared machinery: the standard workload
//! (10 real + N synthetic programs), the measurement loop over the
//! algorithm suite, time capping for solver-backed frameworks (mirroring
//! the paper's 2-hour bar cap), and table/JSON reporting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;

use hermes_core::{DeploymentAlgorithm, Epsilon, ProgramAnalyzer};
use hermes_dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes_dataplane::{library, Program};
use hermes_net::Network;
use hermes_sim::testbed::{normalized_impact, NormalizedPerf, TestbedConfig};
use hermes_tdg::Tdg;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Reported execution time (ms) for solver runs that exceed the paper's
/// two-hour cap; Fig. 7 sets such bars to 10⁷ ms.
pub const CAPPED_TIME_MS: f64 = 1e7;

/// Above this many placement binaries (`nodes × programmable switches`)
/// an ILP attempt is hopeless and its time is reported as capped.
pub const ILP_SIZE_GUARD: usize = 4_000;

/// Companion guard on rank-linearization cells (`edges × switches²`);
/// mirrors [`hermes_baselines::IlpConfig::max_rank_cells`].
pub const ILP_RANK_GUARD: usize = 2_500;

/// The workload of the paper's evaluation: the ten real programs plus
/// `total - 10` synthetic ones (seeded, so every run sees the same set).
/// For `total <= 10`, a prefix of the real programs.
pub fn workload(total: usize) -> Vec<Program> {
    let mut programs = library::real_programs();
    if total <= programs.len() {
        programs.truncate(total);
        return programs;
    }
    let mut generator = SyntheticGenerator::new(42, SyntheticConfig::default());
    programs.extend(generator.programs(total - programs.len()));
    programs
}

/// Builds the merged TDG for a workload (Algorithm 1 front end).
pub fn analyze(programs: &[Program]) -> Tdg {
    ProgramAnalyzer::new().analyze(programs)
}

/// One algorithm's measurements on one instance.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Algorithm display name.
    pub algorithm: String,
    /// `A_max` of its plan in bytes (`None` when infeasible).
    pub overhead_bytes: Option<u64>,
    /// Occupied programmable switches.
    pub occupied_switches: Option<usize>,
    /// Mean wall-clock deployment time in milliseconds (as measured).
    pub measured_ms: f64,
    /// Time as reported in the figures: `measured_ms`, or
    /// [`CAPPED_TIME_MS`] when the solver exceeded the practical cap.
    pub reported_ms: f64,
    /// `true` when `reported_ms` was capped.
    pub capped: bool,
    /// Normalized FCT (≥ 1) of a 1024-byte-packet flow carrying this
    /// plan's overhead through the testbed simulator.
    pub fct_ratio: Option<f64>,
    /// Normalized goodput (≤ 1), same setting.
    pub goodput_ratio: Option<f64>,
}

/// Knobs of the measurement loop.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Timing repetitions (plans are deterministic; only timing varies).
    pub timing_runs: usize,
    /// Testbed simulation shape for the FCT/goodput columns.
    pub sim: TestbedConfig,
    /// Packet size for the FCT/goodput columns (paper Exp#4: 1024 B).
    pub packet_size: u32,
    /// ε-bounds (paper: loose).
    pub eps: Epsilon,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            timing_runs: 1,
            sim: TestbedConfig { packets: 5_000, ..Default::default() },
            packet_size: 1024,
            eps: Epsilon::loose(),
        }
    }
}

/// Runs every algorithm in `suite` on `(tdg, net)` and gathers the four
/// panel metrics (overhead, time, FCT, goodput).
pub fn run_suite(
    tdg: &Tdg,
    net: &Network,
    suite: &[Box<dyn DeploymentAlgorithm>],
    config: &RunConfig,
) -> Vec<Measurement> {
    let q = net.programmable_switches().len();
    let binaries = tdg.node_count() * q;
    let rank_cells = tdg.edge_count() * q * q;
    suite
        .iter()
        .map(|algo| {
            if std::env::var_os("HERMES_VERBOSE").is_some() {
                eprintln!(
                    "[run_suite] {} on {} nodes / {} programmable switches",
                    algo.name(),
                    tdg.node_count(),
                    q
                );
            }
            let mut total = Duration::ZERO;
            let mut plan = None;
            for _ in 0..config.timing_runs.max(1) {
                let start = Instant::now();
                let result = algo.deploy(tdg, net, &config.eps);
                total += start.elapsed();
                plan = result.ok();
            }
            let measured_ms = total.as_secs_f64() * 1000.0 / config.timing_runs.max(1) as f64;
            let capped =
                algo.is_exhaustive() && (binaries > ILP_SIZE_GUARD || rank_cells > ILP_RANK_GUARD);
            let reported_ms = if capped { CAPPED_TIME_MS } else { measured_ms };
            let overhead = plan.as_ref().map(|p| p.max_inter_switch_bytes(tdg));
            let perf: Option<NormalizedPerf> = overhead
                .map(|bytes| normalized_impact(&config.sim, config.packet_size, bytes as u32));
            Measurement {
                algorithm: algo.name().to_owned(),
                overhead_bytes: overhead,
                occupied_switches: plan.as_ref().map(|p| p.occupied_switch_count()),
                measured_ms,
                reported_ms,
                capped,
                fct_ratio: perf.map(|p| p.fct_ratio),
                goodput_ratio: perf.map(|p| p.goodput_ratio),
            }
        })
        .collect()
}

/// Reads the ILP/exhaustive-solver budget from `HERMES_ILP_BUDGET_SECS`
/// (default `default_secs`). Lets quick runs and full reproductions share
/// the binaries.
pub fn ilp_budget(default_secs: u64) -> Duration {
    std::env::var("HERMES_ILP_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map_or(Duration::from_secs(default_secs), Duration::from_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_baselines::standard_suite;
    use hermes_net::topology;

    #[test]
    fn workload_composition() {
        assert_eq!(workload(4).len(), 4);
        assert_eq!(workload(10).len(), 10);
        let w = workload(15);
        assert_eq!(w.len(), 15);
        assert_eq!(w[9].name(), "elastic"); // hh_detect() is the elastic sketch
        assert!(w[10].name().starts_with("syn"));
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(13), workload(13));
    }

    #[test]
    fn run_suite_produces_all_metrics() {
        let tdg = analyze(&workload(3));
        let net = topology::linear(3, 10.0);
        let suite = standard_suite(Duration::from_millis(500));
        let config = RunConfig {
            sim: TestbedConfig { packets: 200, ..Default::default() },
            ..Default::default()
        };
        let rows = run_suite(&tdg, &net, &suite, &config);
        assert_eq!(rows.len(), suite.len());
        for r in &rows {
            assert!(r.overhead_bytes.is_some(), "{} infeasible", r.algorithm);
            assert!(r.fct_ratio.unwrap() >= 1.0 - 1e-9);
            assert!(r.goodput_ratio.unwrap() <= 1.0 + 1e-9);
            assert!(!r.capped, "tiny instance should not cap");
        }
        // Hermes never worse than the overhead-oblivious baselines.
        let get =
            |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap().overhead_bytes.unwrap();
        assert!(get("Hermes") <= get("FFL"));
        assert!(get("Hermes") <= get("MS"));
        assert!(get("Optimal") <= get("Hermes"));
    }
}
