//! Plain-text table and JSON reporting for the experiment binaries.

use serde::Serialize;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a millisecond reading the way the paper's log-scale bars do:
/// `"(>cap)"`-style marker for capped values, sub-millisecond precision
/// for fast runs.
pub fn fmt_ms(ms: f64, capped: bool) -> String {
    if capped {
        return format!(">{:.0e} (capped)", ms);
    }
    if ms < 1.0 {
        format!("{ms:.3}")
    } else if ms < 1000.0 {
        format!("{ms:.1}")
    } else {
        format!("{:.1}k", ms / 1000.0)
    }
}

/// Prints a serializable value as pretty JSON when `--json` was passed on
/// the command line; returns whether it printed.
pub fn maybe_json<T: Serialize>(value: &T) -> bool {
    if std::env::args().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(value).expect("report types serialize"));
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["name", "value"]);
        t.row(["hermes", "4"]);
        t.row(["a-very-long-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("hermes"));
        // Columns aligned: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col - 2..col], "  ");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(0.5, false), "0.500");
        assert_eq!(fmt_ms(12.34, false), "12.3");
        assert_eq!(fmt_ms(4200.0, false), "4.2k");
        assert!(fmt_ms(1e7, true).contains("capped"));
    }
}
