//! Data plane programs: an ordered collection of MATs plus control flow.
//!
//! A program lists its tables in *program order* (the order the P4 control
//! block applies them). Data dependencies (match/action/reverse-match) are
//! inferred later from field read/write sets by the TDG crate; **successor**
//! dependencies — "table `a`'s result decides whether `b` runs at all", i.e.
//! an `if` gating in the control block — cannot be inferred from field sets
//! and are therefore declared explicitly on the program.

use crate::mat::Mat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced while building a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// Two tables in the program share a name.
    DuplicateTable {
        /// The offending program.
        program: String,
        /// The duplicated table name.
        table: String,
    },
    /// A gate references a table name not present in the program.
    UnknownTable {
        /// The offending program.
        program: String,
        /// The referenced table.
        table: String,
    },
    /// A gate points backwards or at itself with respect to program order;
    /// control flow in a pipeline only ever gates *later* tables.
    BackwardGate {
        /// The offending program.
        program: String,
        /// The gating (upstream) table.
        from: String,
        /// The gated (downstream) table.
        to: String,
    },
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::DuplicateTable { program, table } => {
                write!(f, "program `{program}`: duplicate table `{table}`")
            }
            BuildProgramError::UnknownTable { program, table } => {
                write!(f, "program `{program}`: gate references unknown table `{table}`")
            }
            BuildProgramError::BackwardGate { program, from, to } => {
                write!(f, "program `{program}`: gate `{from}` -> `{to}` does not point forward in program order")
            }
        }
    }
}

impl std::error::Error for BuildProgramError {}

/// A complete data plane program.
///
/// # Examples
///
/// ```
/// use hermes_dataplane::program::Program;
/// use hermes_dataplane::mat::{Mat, MatchKind};
/// use hermes_dataplane::action::Action;
/// use hermes_dataplane::fields::{Field, headers};
///
/// let idx = Field::metadata("meta.idx", 4);
/// let hash = Mat::builder("hash")
///     .action(Action::writing("set", [idx.clone()]))
///     .build()?;
/// let count = Mat::builder("count")
///     .match_field(idx, MatchKind::Exact)
///     .action(Action::new("bump"))
///     .build()?;
/// let prog = Program::builder("counter")
///     .table(hash)
///     .table(count)
///     .build()?;
/// assert_eq!(prog.tables().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    tables: Vec<Mat>,
    /// Successor gates as index pairs `(upstream, downstream)` into `tables`.
    gates: Vec<(usize, usize)>,
}

impl Program {
    /// Starts building a program with the given name.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder { name: name.into(), tables: Vec::new(), gates: Vec::new() }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tables in program order.
    pub fn tables(&self) -> &[Mat] {
        &self.tables
    }

    /// Successor gates as `(upstream, downstream)` index pairs into
    /// [`Program::tables`]; each means the upstream table's result decides
    /// whether the downstream table executes.
    pub fn gates(&self) -> &[(usize, usize)] {
        &self.gates
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Mat> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// Index of a table by name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name() == name)
    }

    /// Sum of the normalized resource requirements of all tables.
    pub fn total_resource(&self) -> f64 {
        self.tables.iter().map(Mat::resource).sum()
    }

    /// Every distinct field the program touches (matched, read, or written).
    pub fn fields(&self) -> BTreeSet<crate::fields::Field> {
        let mut out = BTreeSet::new();
        for t in &self.tables {
            out.extend(t.match_fields());
            out.extend(t.written_fields());
            out.extend(t.action_read_fields());
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tables, R={:.2})", self.name, self.tables.len(), self.total_resource())
    }
}

/// Builder for [`Program`]; see [`Program::builder`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    tables: Vec<Mat>,
    gates: Vec<(String, String)>,
}

impl ProgramBuilder {
    /// Appends a table in program order.
    #[must_use]
    pub fn table(mut self, mat: Mat) -> Self {
        self.tables.push(mat);
        self
    }

    /// Declares that `upstream`'s result gates execution of `downstream`
    /// (a successor dependency, type 𝕊 in the paper).
    #[must_use]
    pub fn gate(mut self, upstream: impl Into<String>, downstream: impl Into<String>) -> Self {
        self.gates.push((upstream.into(), downstream.into()));
        self
    }

    /// Finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError`] on duplicate table names, gates naming
    /// unknown tables, or gates that do not point forward in program order.
    pub fn build(self) -> Result<Program, BuildProgramError> {
        let mut seen = BTreeSet::new();
        for t in &self.tables {
            if !seen.insert(t.name().to_owned()) {
                return Err(BuildProgramError::DuplicateTable {
                    program: self.name,
                    table: t.name().to_owned(),
                });
            }
        }
        let mut gates = Vec::with_capacity(self.gates.len());
        for (from, to) in &self.gates {
            let fi = self.tables.iter().position(|t| t.name() == from).ok_or_else(|| {
                BuildProgramError::UnknownTable { program: self.name.clone(), table: from.clone() }
            })?;
            let ti = self.tables.iter().position(|t| t.name() == to).ok_or_else(|| {
                BuildProgramError::UnknownTable { program: self.name.clone(), table: to.clone() }
            })?;
            if fi >= ti {
                return Err(BuildProgramError::BackwardGate {
                    program: self.name,
                    from: from.clone(),
                    to: to.clone(),
                });
            }
            gates.push((fi, ti));
        }
        Ok(Program { name: self.name, tables: self.tables, gates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::fields::Field;

    fn mat(name: &str) -> Mat {
        Mat::builder(name)
            .action(Action::writing("w", [Field::metadata(format!("meta.{name}"), 4)]))
            .resource(0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_program_in_order() {
        let p = Program::builder("p").table(mat("a")).table(mat("b")).build().unwrap();
        assert_eq!(p.tables()[0].name(), "a");
        assert_eq!(p.table_index("b"), Some(1));
        assert!((p.total_resource() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = Program::builder("p").table(mat("a")).table(mat("a")).build().unwrap_err();
        assert!(matches!(err, BuildProgramError::DuplicateTable { .. }));
    }

    #[test]
    fn gate_must_reference_known_tables() {
        let err = Program::builder("p").table(mat("a")).gate("a", "nope").build().unwrap_err();
        assert!(matches!(err, BuildProgramError::UnknownTable { .. }));
    }

    #[test]
    fn gate_must_point_forward() {
        let err = Program::builder("p")
            .table(mat("a"))
            .table(mat("b"))
            .gate("b", "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildProgramError::BackwardGate { .. }));
        let err2 = Program::builder("p").table(mat("a")).gate("a", "a").build().unwrap_err();
        assert!(matches!(err2, BuildProgramError::BackwardGate { .. }));
    }

    #[test]
    fn gates_resolved_to_indices() {
        let p = Program::builder("p")
            .table(mat("a"))
            .table(mat("b"))
            .table(mat("c"))
            .gate("a", "c")
            .build()
            .unwrap();
        assert_eq!(p.gates(), &[(0, 2)]);
    }

    #[test]
    fn fields_unions_all_tables() {
        let p = Program::builder("p").table(mat("a")).table(mat("b")).build().unwrap();
        assert_eq!(p.fields().len(), 2);
    }
}
