//! Static well-formedness checks for data plane programs.
//!
//! The deployment pipeline happily places whatever it is given; these
//! lints catch the program bugs that would otherwise surface as silent
//! packet-processing errors after deployment — above all metadata that is
//! matched before anything ever writes it (it reads as zero on hardware),
//! and metadata that is produced but never consumed (pure pipeline
//! waste, and a piggyback candidate that inflates `A(a,b)` for nothing).

use crate::fields::Field;
use crate::program::Program;
use std::collections::BTreeSet;
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A table matches or reads a metadata field no earlier table writes.
    MetadataReadBeforeWrite {
        /// The consuming table.
        table: String,
        /// The field that reads as zero.
        field: String,
    },
    /// A metadata field is written but no later table consumes it.
    MetadataNeverConsumed {
        /// The producing table.
        table: String,
        /// The wasted field.
        field: String,
    },
    /// A table has no actions: packets hit it and nothing happens.
    TableWithoutActions {
        /// The inert table.
        table: String,
    },
    /// A declared gate duplicates an existing data dependency.
    RedundantGate {
        /// Gating table.
        from: String,
        /// Gated table.
        to: String,
    },
    /// A table's installed rules use less than 1 % of its capacity,
    /// suggesting a mis-sized `C_a` (resources are billed by capacity).
    OversizedCapacity {
        /// The table in question.
        table: String,
        /// Declared capacity.
        capacity: usize,
        /// Installed rules.
        rules: usize,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::MetadataReadBeforeWrite { table, field } => {
                write!(f, "`{table}` consumes metadata `{field}` before any table writes it")
            }
            Lint::MetadataNeverConsumed { table, field } => {
                write!(f, "`{table}` writes metadata `{field}` that nothing consumes")
            }
            Lint::TableWithoutActions { table } => write!(f, "`{table}` has no actions"),
            Lint::RedundantGate { from, to } => {
                write!(f, "gate `{from}` -> `{to}` duplicates a data dependency")
            }
            Lint::OversizedCapacity { table, capacity, rules } => {
                write!(f, "`{table}` declares capacity {capacity} but installs {rules} rules")
            }
        }
    }
}

/// Lints one program in isolation. Cross-program communication through
/// shared fields is legitimate (see the TDG merge), so call
/// [`lint_composition`] for whole-deployment checks instead when multiple
/// programs cooperate.
pub fn lint(program: &Program) -> Vec<Lint> {
    lint_composition(std::slice::from_ref(program))
}

/// Lints a set of programs as the sequential composition the TDG merge
/// produces: earlier programs' writes satisfy later programs' reads.
pub fn lint_composition(programs: &[Program]) -> Vec<Lint> {
    let mut findings = Vec::new();

    // Global pass over (program order, table order).
    let tables: Vec<(&Program, &crate::mat::Mat)> =
        programs.iter().flat_map(|p| p.tables().iter().map(move |t| (p, t))).collect();

    // Read-before-write over metadata.
    let mut written: BTreeSet<Field> = BTreeSet::new();
    for (_, t) in &tables {
        let mut consumed: BTreeSet<Field> = t.match_fields();
        consumed.extend(t.action_read_fields());
        for f in consumed.into_iter().filter(Field::is_metadata) {
            // Self-produced metadata within the same table (hash + use) is
            // fine; check writes of *this* table too.
            if !written.contains(&f) && !t.written_fields().contains(&f) {
                findings.push(Lint::MetadataReadBeforeWrite {
                    table: t.name().to_owned(),
                    field: f.name().to_owned(),
                });
            }
        }
        written.extend(t.written_fields());
    }

    // Never-consumed metadata: collect all consumption, then check writes.
    let mut all_consumed: BTreeSet<Field> = BTreeSet::new();
    for (_, t) in &tables {
        all_consumed.extend(t.match_fields());
        all_consumed.extend(t.action_read_fields());
    }
    for (_, t) in &tables {
        for f in t.written_metadata() {
            if !all_consumed.contains(&f) {
                findings.push(Lint::MetadataNeverConsumed {
                    table: t.name().to_owned(),
                    field: f.name().to_owned(),
                });
            }
        }
    }

    // Per-table checks.
    for (_, t) in &tables {
        if t.actions().is_empty() {
            findings.push(Lint::TableWithoutActions { table: t.name().to_owned() });
        }
        if t.capacity() >= 1_000 && !t.rules().is_empty() && t.rules().len() * 100 < t.capacity() {
            findings.push(Lint::OversizedCapacity {
                table: t.name().to_owned(),
                capacity: t.capacity(),
                rules: t.rules().len(),
            });
        }
    }

    // Redundant gates (per program).
    for p in programs {
        for &(from, to) in p.gates() {
            let a = &p.tables()[from];
            let b = &p.tables()[to];
            let wa = a.written_fields();
            let mut consumed = b.match_fields();
            consumed.extend(b.action_read_fields());
            if wa.iter().any(|f| consumed.contains(f)) {
                findings.push(Lint::RedundantGate {
                    from: a.name().to_owned(),
                    to: b.name().to_owned(),
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::library;
    use crate::mat::{Mat, MatchKind, Rule};

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    #[test]
    fn read_before_write_detected() {
        let t = Mat::builder("t")
            .match_field(meta("meta.ghost", 4), MatchKind::Exact)
            .action(Action::new("a"))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        let findings = lint(&p);
        assert!(findings.iter().any(
            |l| matches!(l, Lint::MetadataReadBeforeWrite { field, .. } if field == "meta.ghost")
        ));
    }

    #[test]
    fn self_produced_metadata_is_fine() {
        // A table that hashes into meta.idx and immediately uses it as a
        // register index is legitimate.
        let idx = meta("meta.idx", 4);
        let t = Mat::builder("t")
            .action(
                Action::new("a")
                    .with_op(crate::action::PrimitiveOp::Hash { dst: idx.clone(), srcs: vec![] })
                    .with_op(crate::action::PrimitiveOp::RegisterOp { index: idx, out: None }),
            )
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(!lint(&p).iter().any(|l| matches!(l, Lint::MetadataReadBeforeWrite { .. })));
    }

    #[test]
    fn never_consumed_detected() {
        let t = Mat::builder("t")
            .action(Action::writing("w", [meta("meta.waste", 12)]))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(lint(&p).iter().any(
            |l| matches!(l, Lint::MetadataNeverConsumed { field, .. } if field == "meta.waste")
        ));
    }

    #[test]
    fn composition_satisfies_cross_program_reads() {
        // Producer program then consumer program: no read-before-write.
        let producer = Program::builder("a")
            .table(
                Mat::builder("w")
                    .action(Action::writing("w", [meta("meta.shared", 4)]))
                    .resource(0.1)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let consumer = Program::builder("b")
            .table(
                Mat::builder("r")
                    .match_field(meta("meta.shared", 4), MatchKind::Exact)
                    .action(Action::new("n"))
                    .resource(0.1)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let findings = lint_composition(&[producer.clone(), consumer.clone()]);
        assert!(!findings.iter().any(|l| matches!(l, Lint::MetadataReadBeforeWrite { .. })));
        // Reverse order: the read happens first.
        let findings = lint_composition(&[consumer, producer]);
        assert!(findings.iter().any(|l| matches!(l, Lint::MetadataReadBeforeWrite { .. })));
    }

    #[test]
    fn inert_table_detected() {
        let t = Mat::builder("noop").resource(0.1).build().unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::TableWithoutActions { .. })));
    }

    #[test]
    fn redundant_gate_detected() {
        let f = meta("meta.x", 1);
        let a = Mat::builder("a")
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let b = Mat::builder("b")
            .match_field(f, MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(a).table(b).gate("a", "b").build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::RedundantGate { .. })));
    }

    #[test]
    fn oversized_capacity_detected() {
        let t = Mat::builder("big")
            .action(Action::new("a"))
            .rule(Rule::new(Vec::<String>::new(), "a"))
            .capacity(100_000)
            .resource(0.5)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::OversizedCapacity { .. })));
    }

    #[test]
    fn library_programs_compose_cleanly_for_serious_lints() {
        // The library is our reference workload: composed in order, no
        // read-before-write and no inert tables. (Unconsumed terminal
        // outputs like INT reports are expected and not asserted on.)
        let findings = lint_composition(&library::real_programs());
        assert!(
            !findings.iter().any(|l| matches!(
                l,
                Lint::MetadataReadBeforeWrite { .. } | Lint::TableWithoutActions { .. }
            )),
            "{findings:?}"
        );
    }
}
