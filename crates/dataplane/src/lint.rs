//! Static well-formedness checks for data plane programs.
//!
//! The deployment pipeline happily places whatever it is given; these
//! lints catch the program bugs that would otherwise surface as silent
//! packet-processing errors after deployment — above all metadata that is
//! matched before anything ever writes it (it reads as zero on hardware),
//! and metadata that is produced but never consumed (pure pipeline
//! waste, and a piggyback candidate that inflates `A(a,b)` for nothing).

use crate::fields::Field;
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A table matches or reads a metadata field no earlier table writes.
    MetadataReadBeforeWrite {
        /// The consuming table.
        table: String,
        /// The field that reads as zero.
        field: String,
    },
    /// A metadata field is written but no later table consumes it.
    MetadataNeverConsumed {
        /// The producing table.
        table: String,
        /// The wasted field.
        field: String,
    },
    /// A table has no actions: packets hit it and nothing happens.
    TableWithoutActions {
        /// The inert table.
        table: String,
    },
    /// A declared gate duplicates an existing data dependency.
    RedundantGate {
        /// Gating table.
        from: String,
        /// Gated table.
        to: String,
    },
    /// A table's installed rules use less than 1 % of its capacity,
    /// suggesting a mis-sized `C_a` (resources are billed by capacity).
    OversizedCapacity {
        /// The table in question.
        table: String,
        /// Declared capacity.
        capacity: usize,
        /// Installed rules.
        rules: usize,
    },
    /// Two *different* tables carry the same name — within one program, or
    /// across programs with different structure. (Structurally identical
    /// same-named tables across programs are the intended merge-redundancy
    /// case and are not reported.)
    DuplicateTableName {
        /// The clashing table name.
        table: String,
        /// Program declaring the first occurrence.
        first_program: String,
        /// Program declaring the clashing occurrence.
        second_program: String,
    },
    /// Tables in two different programs write the same metadata field:
    /// the downstream program silently clobbers the upstream value.
    /// (Again, structurally identical tables — shared, to-be-merged MATs —
    /// are exempt.)
    CrossProgramSharedWrite {
        /// The doubly-written field.
        field: String,
        /// Program-qualified upstream writer.
        first_table: String,
        /// Program-qualified downstream writer.
        second_table: String,
    },
    /// Two different MATs of one program write the same field with
    /// non-commutative operations: the state-access pass will classify the
    /// field `SingleWriter`, so every placement of the pair is serialized.
    /// Rewriting the updates as a common commutative fold (add/max/min/or)
    /// would make the field `CommutativeUpdate` and relaxable.
    NonCommutativeMultiWriter {
        /// The multiply-written field.
        field: String,
        /// First writing table.
        first_table: String,
        /// Second writing table.
        second_table: String,
    },
}

impl Lint {
    /// Stable diagnostic code (`HL0xx` block), fixed for the lifetime of
    /// the tool so external tooling can filter on it.
    pub fn code(&self) -> &'static str {
        match self {
            Lint::MetadataReadBeforeWrite { .. } => "HL001",
            Lint::MetadataNeverConsumed { .. } => "HL002",
            Lint::TableWithoutActions { .. } => "HL003",
            Lint::RedundantGate { .. } => "HL004",
            Lint::OversizedCapacity { .. } => "HL005",
            Lint::DuplicateTableName { .. } => "HL006",
            Lint::CrossProgramSharedWrite { .. } => "HL007",
            Lint::NonCommutativeMultiWriter { .. } => "HL008",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::MetadataReadBeforeWrite { table, field } => {
                write!(f, "`{table}` consumes metadata `{field}` before any table writes it")
            }
            Lint::MetadataNeverConsumed { table, field } => {
                write!(f, "`{table}` writes metadata `{field}` that nothing consumes")
            }
            Lint::TableWithoutActions { table } => write!(f, "`{table}` has no actions"),
            Lint::RedundantGate { from, to } => {
                write!(f, "gate `{from}` -> `{to}` duplicates a data dependency")
            }
            Lint::OversizedCapacity { table, capacity, rules } => {
                write!(f, "`{table}` declares capacity {capacity} but installs {rules} rules")
            }
            Lint::DuplicateTableName { table, first_program, second_program } => write!(
                f,
                "table name `{table}` is declared by `{first_program}` and, with different \
                 structure, by `{second_program}`"
            ),
            Lint::CrossProgramSharedWrite { field, first_table, second_table } => write!(
                f,
                "`{first_table}` and `{second_table}` both write metadata `{field}` across \
                 programs; the later write clobbers the earlier one"
            ),
            Lint::NonCommutativeMultiWriter { field, first_table, second_table } => write!(
                f,
                "`{first_table}` and `{second_table}` both write `{field}` with \
                 non-commutative operations; the field stays single-writer and the pair \
                 is serialized everywhere"
            ),
        }
    }
}

/// Lints one program in isolation. Cross-program communication through
/// shared fields is legitimate (see the TDG merge), so call
/// [`lint_composition`] for whole-deployment checks instead when multiple
/// programs cooperate.
pub fn lint(program: &Program) -> Vec<Lint> {
    lint_composition(std::slice::from_ref(program))
}

/// Lints a set of programs as the sequential composition the TDG merge
/// produces: earlier programs' writes satisfy later programs' reads.
pub fn lint_composition(programs: &[Program]) -> Vec<Lint> {
    let mut findings = Vec::new();

    // Global pass over (program order, table order).
    let tables: Vec<(&Program, &crate::mat::Mat)> =
        programs.iter().flat_map(|p| p.tables().iter().map(move |t| (p, t))).collect();

    // Read-before-write over metadata.
    let mut written: BTreeSet<Field> = BTreeSet::new();
    for (_, t) in &tables {
        let mut consumed: BTreeSet<Field> = t.match_fields();
        consumed.extend(t.action_read_fields());
        for f in consumed.into_iter().filter(Field::is_metadata) {
            // Self-produced metadata within the same table (hash + use) is
            // fine; check writes of *this* table too.
            if !written.contains(&f) && !t.written_fields().contains(&f) {
                findings.push(Lint::MetadataReadBeforeWrite {
                    table: t.name().to_owned(),
                    field: f.name().to_owned(),
                });
            }
        }
        written.extend(t.written_fields());
    }

    // Never-consumed metadata: collect all consumption, then check writes.
    let mut all_consumed: BTreeSet<Field> = BTreeSet::new();
    for (_, t) in &tables {
        all_consumed.extend(t.match_fields());
        all_consumed.extend(t.action_read_fields());
    }
    for (_, t) in &tables {
        for f in t.written_metadata() {
            if !all_consumed.contains(&f) {
                findings.push(Lint::MetadataNeverConsumed {
                    table: t.name().to_owned(),
                    field: f.name().to_owned(),
                });
            }
        }
    }

    // Per-table checks.
    for (_, t) in &tables {
        if t.actions().is_empty() {
            findings.push(Lint::TableWithoutActions { table: t.name().to_owned() });
        }
        if t.capacity() >= 1_000 && !t.rules().is_empty() && t.rules().len() * 100 < t.capacity() {
            findings.push(Lint::OversizedCapacity {
                table: t.name().to_owned(),
                capacity: t.capacity(),
                rules: t.rules().len(),
            });
        }
    }

    // Duplicate table names. Within a program every repeat clashes;
    // across programs only structurally *different* tables do — identical
    // signatures are the shared-MAT redundancy the TDG merge eliminates.
    {
        let mut by_name: BTreeMap<&str, Vec<(&Program, &crate::mat::Mat)>> = BTreeMap::new();
        for &(p, t) in &tables {
            by_name.entry(t.name()).or_default().push((p, t));
        }
        for (name, occurrences) in by_name {
            for (i, &(p2, t2)) in occurrences.iter().enumerate().skip(1) {
                let clashing = occurrences[..i]
                    .iter()
                    .find(|(p1, t1)| std::ptr::eq(*p1, p2) || t1.signature() != t2.signature());
                if let Some(&(p1, _)) = clashing {
                    findings.push(Lint::DuplicateTableName {
                        table: name.to_owned(),
                        first_program: p1.name().to_owned(),
                        second_program: p2.name().to_owned(),
                    });
                }
            }
        }
    }

    // Cross-program writes to one metadata field: the later program
    // silently clobbers the earlier one's value. Identical-signature
    // writers (shared MATs) are exempt for the same reason as above.
    {
        let mut writers: BTreeMap<Field, Vec<(&Program, &crate::mat::Mat)>> = BTreeMap::new();
        for &(p, t) in &tables {
            for f in t.written_metadata() {
                writers.entry(f).or_default().push((p, t));
            }
        }
        for (field, ws) in writers {
            // One finding per field: the first cross-program pair of
            // structurally different writers (writer lists are short, so
            // the quadratic scan is immaterial).
            let clash = ws
                .iter()
                .enumerate()
                .flat_map(|(i, w2)| ws[..i].iter().map(move |w1| (w1, w2)))
                .find(|((p1, t1), (p2, t2))| {
                    !std::ptr::eq(*p1, *p2) && t1.signature() != t2.signature()
                });
            if let Some((&(p1, t1), &(p2, t2))) = clash {
                findings.push(Lint::CrossProgramSharedWrite {
                    field: field.name().to_owned(),
                    first_table: format!("{}/{}", p1.name(), t1.name()),
                    second_table: format!("{}/{}", p2.name(), t2.name()),
                });
            }
        }
    }

    // Non-commutative multi-writer fields within one program (HL008):
    // the state-access classification pass will pin such a field
    // `SingleWriter`, serializing every placement of the writing pair. If
    // every write were a fold of one common kind the field would instead
    // be `CommutativeUpdate` and the dependency relaxable.
    for p in programs {
        let mut writers: BTreeMap<Field, Vec<&crate::mat::Mat>> = BTreeMap::new();
        for t in p.tables() {
            for f in t.written_fields() {
                writers.entry(f).or_default().push(t);
            }
        }
        for (field, ws) in writers {
            if ws.len() < 2 {
                continue;
            }
            let write_ops = ws.iter().flat_map(|t| {
                t.actions().iter().flat_map(|a| a.ops()).filter(|op| op.writes().contains(&&field))
            });
            let mut kinds: BTreeSet<Option<crate::action::FoldOp>> =
                write_ops.map(crate::action::PrimitiveOp::fold_op).collect();
            let all_one_fold_kind =
                kinds.len() == 1 && kinds.pop_first().is_some_and(|k| k.is_some());
            if !all_one_fold_kind {
                findings.push(Lint::NonCommutativeMultiWriter {
                    field: field.name().to_owned(),
                    first_table: ws[0].name().to_owned(),
                    second_table: ws[1].name().to_owned(),
                });
            }
        }
    }

    // Redundant gates (per program).
    for p in programs {
        for &(from, to) in p.gates() {
            let a = &p.tables()[from];
            let b = &p.tables()[to];
            let wa = a.written_fields();
            let mut consumed = b.match_fields();
            consumed.extend(b.action_read_fields());
            if wa.iter().any(|f| consumed.contains(f)) {
                findings.push(Lint::RedundantGate {
                    from: a.name().to_owned(),
                    to: b.name().to_owned(),
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::library;
    use crate::mat::{Mat, MatchKind, Rule};

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    #[test]
    fn read_before_write_detected() {
        let t = Mat::builder("t")
            .match_field(meta("meta.ghost", 4), MatchKind::Exact)
            .action(Action::new("a"))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        let findings = lint(&p);
        assert!(findings.iter().any(
            |l| matches!(l, Lint::MetadataReadBeforeWrite { field, .. } if field == "meta.ghost")
        ));
    }

    #[test]
    fn self_produced_metadata_is_fine() {
        // A table that hashes into meta.idx and immediately uses it as a
        // register index is legitimate.
        let idx = meta("meta.idx", 4);
        let t = Mat::builder("t")
            .action(
                Action::new("a")
                    .with_op(crate::action::PrimitiveOp::Hash { dst: idx.clone(), srcs: vec![] })
                    .with_op(crate::action::PrimitiveOp::RegisterOp { index: idx, out: None }),
            )
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(!lint(&p).iter().any(|l| matches!(l, Lint::MetadataReadBeforeWrite { .. })));
    }

    #[test]
    fn never_consumed_detected() {
        let t = Mat::builder("t")
            .action(Action::writing("w", [meta("meta.waste", 12)]))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(lint(&p).iter().any(
            |l| matches!(l, Lint::MetadataNeverConsumed { field, .. } if field == "meta.waste")
        ));
    }

    #[test]
    fn composition_satisfies_cross_program_reads() {
        // Producer program then consumer program: no read-before-write.
        let producer = Program::builder("a")
            .table(
                Mat::builder("w")
                    .action(Action::writing("w", [meta("meta.shared", 4)]))
                    .resource(0.1)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let consumer = Program::builder("b")
            .table(
                Mat::builder("r")
                    .match_field(meta("meta.shared", 4), MatchKind::Exact)
                    .action(Action::new("n"))
                    .resource(0.1)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let findings = lint_composition(&[producer.clone(), consumer.clone()]);
        assert!(!findings.iter().any(|l| matches!(l, Lint::MetadataReadBeforeWrite { .. })));
        // Reverse order: the read happens first.
        let findings = lint_composition(&[consumer, producer]);
        assert!(findings.iter().any(|l| matches!(l, Lint::MetadataReadBeforeWrite { .. })));
    }

    #[test]
    fn inert_table_detected() {
        let t = Mat::builder("noop").resource(0.1).build().unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::TableWithoutActions { .. })));
    }

    #[test]
    fn redundant_gate_detected() {
        let f = meta("meta.x", 1);
        let a = Mat::builder("a")
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let b = Mat::builder("b")
            .match_field(f, MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(a).table(b).gate("a", "b").build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::RedundantGate { .. })));
    }

    #[test]
    fn oversized_capacity_detected() {
        let t = Mat::builder("big")
            .action(Action::new("a"))
            .rule(Rule::new(Vec::<String>::new(), "a"))
            .capacity(100_000)
            .resource(0.5)
            .build()
            .unwrap();
        let p = Program::builder("p").table(t).build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::OversizedCapacity { .. })));
    }

    #[test]
    fn duplicate_name_within_program_rejected_at_construction() {
        // The builder already refuses same-name tables inside one program,
        // so the lint's live path is the cross-program one below.
        let mk = || Mat::builder("dup").action(Action::new("a")).resource(0.1).build().unwrap();
        let err = Program::builder("p").table(mk()).table(mk()).build().unwrap_err();
        assert!(format!("{err:?}").contains("dup"));
    }

    #[test]
    fn duplicate_name_across_programs_needs_different_structure() {
        // `signature()` covers match keys, actions, and capacity — vary
        // capacity to make structurally different same-named tables.
        let mk = |cap: usize| {
            Mat::builder("shared")
                .action(Action::new("a"))
                .capacity(cap)
                .resource(0.1)
                .build()
                .unwrap()
        };
        // Identical signature: the intended merge-redundancy case.
        let pa = Program::builder("a").table(mk(64)).build().unwrap();
        let pb = Program::builder("b").table(mk(64)).build().unwrap();
        assert!(!lint_composition(&[pa.clone(), pb])
            .iter()
            .any(|l| matches!(l, Lint::DuplicateTableName { .. })));
        // Different capacity -> different signature -> clash.
        let pc = Program::builder("c").table(mk(128)).build().unwrap();
        let findings = lint_composition(&[pa, pc]);
        assert!(
            findings.iter().any(|l| matches!(
                l,
                Lint::DuplicateTableName { second_program, .. } if second_program == "c"
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn cross_program_shared_write_detected() {
        let f = meta("meta.clobbered", 4);
        let mk = |name: &str, cap: usize| {
            Mat::builder(name.to_owned())
                .action(Action::writing("w", [f.clone()]))
                .capacity(cap)
                .resource(0.1)
                .build()
                .unwrap()
        };
        // Structurally different writers in different programs: clobber.
        let pa = Program::builder("a").table(mk("wa", 64)).build().unwrap();
        let pb = Program::builder("b").table(mk("wb", 128)).build().unwrap();
        let findings = lint_composition(&[pa.clone(), pb]);
        assert!(
            findings.iter().any(|l| matches!(
                l,
                Lint::CrossProgramSharedWrite { field, .. } if field == "meta.clobbered"
            )),
            "{findings:?}"
        );
        // An identical-signature writer shared across programs is the
        // merge case (folded into one MAT), not a clobber.
        let pb2 = Program::builder("b").table(mk("wb", 64)).build().unwrap();
        assert!(!lint_composition(&[pa, pb2])
            .iter()
            .any(|l| matches!(l, Lint::CrossProgramSharedWrite { .. })));
    }

    #[test]
    fn lint_codes_are_stable() {
        let mk = |l: &Lint| l.code().to_owned();
        assert_eq!(
            mk(&Lint::MetadataReadBeforeWrite { table: String::new(), field: String::new() }),
            "HL001"
        );
        assert_eq!(
            mk(&Lint::MetadataNeverConsumed { table: String::new(), field: String::new() }),
            "HL002"
        );
        assert_eq!(mk(&Lint::TableWithoutActions { table: String::new() }), "HL003");
        assert_eq!(mk(&Lint::RedundantGate { from: String::new(), to: String::new() }), "HL004");
        assert_eq!(
            mk(&Lint::OversizedCapacity { table: String::new(), capacity: 0, rules: 0 }),
            "HL005"
        );
        assert_eq!(
            mk(&Lint::DuplicateTableName {
                table: String::new(),
                first_program: String::new(),
                second_program: String::new(),
            }),
            "HL006"
        );
        assert_eq!(
            mk(&Lint::CrossProgramSharedWrite {
                field: String::new(),
                first_table: String::new(),
                second_table: String::new(),
            }),
            "HL007"
        );
        assert_eq!(
            mk(&Lint::NonCommutativeMultiWriter {
                field: String::new(),
                first_table: String::new(),
                second_table: String::new(),
            }),
            "HL008"
        );
    }

    #[test]
    fn non_commutative_multi_writer_detected() {
        use crate::action::{FoldOp, PrimitiveOp};
        let acc = meta("meta.acc", 4);
        let folder = |name: &str, op: FoldOp| {
            Mat::builder(name.to_owned())
                .action(Action::new("f").with_op(PrimitiveOp::Fold {
                    dst: acc.clone(),
                    srcs: vec![],
                    op,
                }))
                .resource(0.1)
                .build()
                .unwrap()
        };
        // Two same-kind folders: commutative, no finding.
        let p = Program::builder("p")
            .table(folder("f1", FoldOp::Add))
            .table(folder("f2", FoldOp::Add))
            .build()
            .unwrap();
        assert!(!lint(&p).iter().any(|l| matches!(l, Lint::NonCommutativeMultiWriter { .. })));
        // Mixed fold kinds: HL008.
        let p = Program::builder("p")
            .table(folder("f1", FoldOp::Add))
            .table(folder("f2", FoldOp::Max))
            .build()
            .unwrap();
        assert!(lint(&p).iter().any(|l| matches!(
            l,
            Lint::NonCommutativeMultiWriter { field, .. } if field == "meta.acc"
        )));
        // A plain overwrite plus a folder: HL008 too.
        let setter = Mat::builder("s")
            .action(Action::writing("w", [acc.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let p =
            Program::builder("p").table(setter).table(folder("f", FoldOp::Add)).build().unwrap();
        assert!(lint(&p).iter().any(|l| matches!(l, Lint::NonCommutativeMultiWriter { .. })));
    }

    #[test]
    fn library_programs_compose_cleanly_for_serious_lints() {
        // The library is our reference workload: composed in order, no
        // read-before-write and no inert tables. (Unconsumed terminal
        // outputs like INT reports are expected and not asserted on.)
        let findings = lint_composition(&library::real_programs());
        assert!(
            !findings.iter().any(|l| matches!(
                l,
                Lint::MetadataReadBeforeWrite { .. } | Lint::TableWithoutActions { .. }
            )),
            "{findings:?}"
        );
    }
}
