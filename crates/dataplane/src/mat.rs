//! Match-action tables (MATs): the unit of placement.
//!
//! A MAT carries exactly the five properties the paper ascribes to a TDG
//! node: the match-field set `F^m`, the action set `A`, the written-field
//! set `F^a` (derived from the actions), the rule set `R`, and the rule
//! capacity `C`. It additionally carries a normalized resource requirement
//! `R(a)` expressed as a fraction of one pipeline stage's capacity, which is
//! what the placement constraints (Eq. 9) consume.

use crate::action::Action;
use crate::fields::Field;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How a match field is compared against a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact match (SRAM hash table).
    Exact,
    /// Longest-prefix match (TCAM or algorithmic LPM).
    Lpm,
    /// Ternary match with mask (TCAM).
    Ternary,
    /// Range match (TCAM range expansion).
    Range,
}

impl fmt::Display for MatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchKind::Exact => "exact",
            MatchKind::Lpm => "lpm",
            MatchKind::Ternary => "ternary",
            MatchKind::Range => "range",
        };
        f.write_str(s)
    }
}

/// One match key of a MAT: a field plus the way it is matched.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MatchSpec {
    /// The field being matched.
    pub field: Field,
    /// The match discipline applied to it.
    pub kind: MatchKind,
}

impl MatchSpec {
    /// Creates a match spec.
    pub fn new(field: Field, kind: MatchKind) -> Self {
        MatchSpec { field, kind }
    }
}

/// A user-installed rule: per-key patterns plus the action it invokes.
///
/// The pattern strings are opaque to deployment (placement never inspects
/// rule values), but keeping them allows examples and tests to populate
/// realistic tables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// One pattern per match key, in `MatchSpec` order (e.g. `"10.0.0.0/8"`).
    pub patterns: Vec<String>,
    /// Name of the action in the table's action set to execute on a hit.
    pub action: String,
    /// Priority among overlapping rules; higher wins.
    pub priority: u32,
}

impl Rule {
    /// Creates a rule with priority 0.
    pub fn new<I, S>(patterns: I, action: impl Into<String>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Rule {
            patterns: patterns.into_iter().map(Into::into).collect(),
            action: action.into(),
            priority: 0,
        }
    }
}

/// Errors produced while building a [`Mat`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildMatError {
    /// A rule names an action that is not in the table's action set.
    UnknownAction {
        /// The offending table.
        table: String,
        /// The action the rule referenced.
        action: String,
    },
    /// More rules were installed than the declared capacity `C`.
    CapacityExceeded {
        /// The offending table.
        table: String,
        /// Declared capacity.
        capacity: usize,
        /// Number of rules installed.
        rules: usize,
    },
    /// The declared resource requirement is not a positive finite number.
    InvalidResource {
        /// The offending table.
        table: String,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for BuildMatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMatError::UnknownAction { table, action } => {
                write!(f, "table `{table}`: rule references unknown action `{action}`")
            }
            BuildMatError::CapacityExceeded { table, capacity, rules } => {
                write!(f, "table `{table}`: {rules} rules exceed capacity {capacity}")
            }
            BuildMatError::InvalidResource { table, value } => {
                write!(
                    f,
                    "table `{table}`: resource requirement {value} must be positive and finite"
                )
            }
        }
    }
}

impl std::error::Error for BuildMatError {}

/// A match-action table.
///
/// Construct with [`Mat::builder`]. Equality is structural over all five
/// properties plus the resource requirement; the SPEED merge step treats two
/// structurally equal MATs in different programs as *redundant* and keeps
/// only one copy.
///
/// # Examples
///
/// ```
/// use hermes_dataplane::mat::{Mat, MatchKind, Rule};
/// use hermes_dataplane::action::Action;
/// use hermes_dataplane::fields::{Field, headers};
///
/// let idx = Field::metadata("meta.idx", 4);
/// let mat = Mat::builder("compute_index")
///     .match_field(headers::ipv4_src(), MatchKind::Exact)
///     .action(Action::writing("set_idx", [idx.clone()]))
///     .rule(Rule::new(["*"], "set_idx"))
///     .capacity(1024)
///     .resource(0.25)
///     .build()?;
/// assert!(mat.written_fields().contains(&idx));
/// # Ok::<(), hermes_dataplane::mat::BuildMatError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    name: String,
    match_specs: Vec<MatchSpec>,
    actions: Vec<Action>,
    rules: Vec<Rule>,
    capacity: usize,
    resource: f64,
}

impl Mat {
    /// Starts building a table with the given name.
    pub fn builder(name: impl Into<String>) -> MatBuilder {
        MatBuilder {
            name: name.into(),
            match_specs: Vec::new(),
            actions: Vec::new(),
            rules: Vec::new(),
            capacity: DEFAULT_CAPACITY,
            resource: None,
        }
    }

    /// The table's name, unique within its program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The match keys (field + discipline) in declaration order.
    pub fn match_specs(&self) -> &[MatchSpec] {
        &self.match_specs
    }

    /// The set `F^m` of matched fields.
    pub fn match_fields(&self) -> BTreeSet<Field> {
        self.match_specs.iter().map(|m| m.field.clone()).collect()
    }

    /// The action set `A`.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The set `F^a` of fields written by any action of this table.
    pub fn written_fields(&self) -> BTreeSet<Field> {
        self.actions.iter().flat_map(|a| a.writes()).collect()
    }

    /// Fields read by action bodies (excluding the match keys).
    pub fn action_read_fields(&self) -> BTreeSet<Field> {
        self.actions.iter().flat_map(|a| a.reads()).collect()
    }

    /// The installed rule set `R`.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Maximum number of rules `C` the table can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Normalized resource requirement `R(a)` as a fraction of one pipeline
    /// stage (1.0 = a full stage). May exceed 1.0 for tables that must be
    /// spread over several stages.
    pub fn resource(&self) -> f64 {
        self.resource
    }

    /// `true` if any action of the table manipulates stateful memory.
    pub fn is_stateful(&self) -> bool {
        self.actions.iter().any(Action::is_stateful)
    }

    /// Metadata fields among `F^a` — the fields whose values must travel
    /// with the packet when a dependent table sits on another switch.
    pub fn written_metadata(&self) -> BTreeSet<Field> {
        self.written_fields().into_iter().filter(Field::is_metadata).collect()
    }

    /// Total bytes of metadata this table produces (sum of
    /// [`Mat::written_metadata`] sizes).
    pub fn written_metadata_bytes(&self) -> u32 {
        self.written_metadata().iter().map(Field::size_bytes).sum()
    }

    /// A stable structural signature: two tables with equal signatures are
    /// redundant in the SPEED sense and can be merged into one.
    pub fn signature(&self) -> MatSignature {
        MatSignature {
            match_specs: self.match_specs.iter().cloned().collect(),
            actions: self.actions.iter().cloned().collect(),
            capacity: self.capacity,
        }
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} keys, {} actions, {}/{} rules, R={:.2}]",
            self.name,
            self.match_specs.len(),
            self.actions.len(),
            self.rules.len(),
            self.capacity,
            self.resource
        )
    }
}

/// Structural identity of a MAT used for redundancy elimination.
///
/// Deliberately excludes the table name (programs name shared functionality
/// differently) and the installed rules (rule contents are control-plane
/// state, and redundancy is decided on the data plane structure).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatSignature {
    match_specs: BTreeSet<MatchSpec>,
    actions: BTreeSet<Action>,
    capacity: usize,
}

const DEFAULT_CAPACITY: usize = 1024;

/// Rules-per-full-stage constant used by the default resource estimator.
/// Roughly mirrors the exact-match table density of one Tofino stage.
pub const RULES_PER_STAGE: f64 = 4096.0;

/// Builder for [`Mat`]; see [`Mat::builder`].
#[derive(Debug, Clone)]
pub struct MatBuilder {
    name: String,
    match_specs: Vec<MatchSpec>,
    actions: Vec<Action>,
    rules: Vec<Rule>,
    capacity: usize,
    resource: Option<f64>,
}

impl MatBuilder {
    /// Adds a match key.
    #[must_use]
    pub fn match_field(mut self, field: Field, kind: MatchKind) -> Self {
        self.match_specs.push(MatchSpec::new(field, kind));
        self
    }

    /// Adds an action to the action set.
    #[must_use]
    pub fn action(mut self, action: Action) -> Self {
        self.actions.push(action);
        self
    }

    /// Installs a rule.
    #[must_use]
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Sets the rule capacity `C` (default 1024).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the normalized resource requirement `R(a)` explicitly. When not
    /// called, `R(a)` is estimated as `capacity / RULES_PER_STAGE` weighted
    /// by match-kind cost (TCAM disciplines cost 2x) and clamped to
    /// `[0.05, 4.0]`.
    #[must_use]
    pub fn resource(mut self, stage_fraction: f64) -> Self {
        self.resource = Some(stage_fraction);
        self
    }

    /// Finalizes the table.
    ///
    /// # Errors
    ///
    /// Returns [`BuildMatError`] if a rule references an unknown action, the
    /// rules exceed the capacity, or the resource requirement is invalid.
    pub fn build(self) -> Result<Mat, BuildMatError> {
        for rule in &self.rules {
            if !self.actions.iter().any(|a| a.name() == rule.action) {
                return Err(BuildMatError::UnknownAction {
                    table: self.name,
                    action: rule.action.clone(),
                });
            }
        }
        if self.rules.len() > self.capacity {
            return Err(BuildMatError::CapacityExceeded {
                table: self.name,
                capacity: self.capacity,
                rules: self.rules.len(),
            });
        }
        let resource = match self.resource {
            Some(r) => {
                if !(r.is_finite() && r > 0.0) {
                    return Err(BuildMatError::InvalidResource { table: self.name, value: r });
                }
                r
            }
            None => estimate_resource(&self.match_specs, self.capacity),
        };
        Ok(Mat {
            name: self.name,
            match_specs: self.match_specs,
            actions: self.actions,
            rules: self.rules,
            capacity: self.capacity,
            resource,
        })
    }
}

/// Default resource estimate from static table properties (capacity and
/// match-kind cost), mirroring the static code analysis the paper cites
/// ([8, 49]) for computing `R(a)`.
fn estimate_resource(specs: &[MatchSpec], capacity: usize) -> f64 {
    let tcam_weight = if specs
        .iter()
        .any(|s| matches!(s.kind, MatchKind::Ternary | MatchKind::Lpm | MatchKind::Range))
    {
        2.0
    } else {
        1.0
    };
    (capacity as f64 * tcam_weight / RULES_PER_STAGE).clamp(0.05, 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{headers, Field};

    fn table() -> Mat {
        Mat::builder("t")
            .match_field(headers::ipv4_dst(), MatchKind::Lpm)
            .action(Action::writing("set", [Field::metadata("meta.idx", 4)]))
            .rule(Rule::new(["10.0.0.0/8"], "set"))
            .capacity(100)
            .resource(0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_sets() {
        let t = table();
        assert_eq!(t.match_fields().len(), 1);
        assert!(t.match_fields().contains(&headers::ipv4_dst()));
        assert!(t.written_fields().contains(&Field::metadata("meta.idx", 4)));
        assert_eq!(t.resource(), 0.3);
    }

    #[test]
    fn unknown_action_rejected() {
        let err = Mat::builder("t")
            .action(Action::new("a"))
            .rule(Rule::new(Vec::<String>::new(), "missing"))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildMatError::UnknownAction { .. }));
    }

    #[test]
    fn capacity_overflow_rejected() {
        let err = Mat::builder("t")
            .action(Action::new("a"))
            .rule(Rule::new(Vec::<String>::new(), "a"))
            .rule(Rule::new(Vec::<String>::new(), "a"))
            .capacity(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildMatError::CapacityExceeded { capacity: 1, .. }));
    }

    #[test]
    fn invalid_resource_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Mat::builder("t").resource(bad).build().unwrap_err();
            assert!(matches!(err, BuildMatError::InvalidResource { .. }), "{bad} accepted");
        }
    }

    #[test]
    fn default_resource_estimated_from_capacity_and_kind() {
        let exact = Mat::builder("e")
            .match_field(headers::ipv4_dst(), MatchKind::Exact)
            .capacity(2048)
            .build()
            .unwrap();
        let lpm = Mat::builder("l")
            .match_field(headers::ipv4_dst(), MatchKind::Lpm)
            .capacity(2048)
            .build()
            .unwrap();
        assert!(lpm.resource() > exact.resource());
        assert!((exact.resource() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn written_metadata_excludes_headers() {
        let t = Mat::builder("t")
            .action(Action::writing("w", [Field::metadata("meta.a", 4)]).with_op(
                crate::action::PrimitiveOp::Compute {
                    dst: headers::ipv4_ttl(),
                    srcs: vec![headers::ipv4_ttl()],
                },
            ))
            .build()
            .unwrap();
        assert_eq!(t.written_metadata_bytes(), 4);
        assert_eq!(t.written_fields().len(), 2);
    }

    #[test]
    fn signature_ignores_name_and_rules() {
        let a = Mat::builder("a")
            .match_field(headers::ipv4_dst(), MatchKind::Lpm)
            .action(Action::writing("set", [Field::metadata("meta.idx", 4)]))
            .capacity(64)
            .build()
            .unwrap();
        let b = Mat::builder("b")
            .match_field(headers::ipv4_dst(), MatchKind::Lpm)
            .action(Action::writing("set", [Field::metadata("meta.idx", 4)]))
            .rule(Rule::new(["0.0.0.0/0"], "set"))
            .capacity(64)
            .build()
            .unwrap();
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_differs_on_structure() {
        let a = table();
        let b = Mat::builder("t")
            .match_field(headers::ipv4_src(), MatchKind::Lpm)
            .action(Action::writing("set", [Field::metadata("meta.idx", 4)]))
            .capacity(100)
            .build()
            .unwrap();
        assert_ne!(a.signature(), b.signature());
    }
}
