//! Seeded generator for synthetic data plane programs.
//!
//! Follows the paper's evaluation settings (§VI-A): each synthetic program
//! has 10–20 MATs, each MAT's normalized per-stage resource consumption is
//! uniform in \[10 %, 50 %\], and every ordered pair of MATs carries a
//! dependency with probability 30 %. Dependencies are realized as metadata
//! fields written by the upstream MAT and matched by the downstream MAT, so
//! the TDG inference recovers exactly the generated dependency structure.

use crate::action::Action;
use crate::fields::{headers, Field};
use crate::mat::{Mat, MatchKind};
use crate::program::Program;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for the synthetic program generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Inclusive range of MATs per program. Paper: `10..=20`.
    pub tables_min: usize,
    /// Inclusive upper bound of MATs per program.
    pub tables_max: usize,
    /// Probability that an ordered MAT pair is dependent. Paper: `0.3`.
    pub dependency_probability: f64,
    /// Inclusive range of the per-stage resource fraction. Paper: `0.1..=0.5`.
    pub resource_min: f64,
    /// Inclusive upper bound of the resource fraction.
    pub resource_max: f64,
    /// Candidate metadata sizes (bytes) for generated dependency fields,
    /// drawn uniformly. Defaults to the Table-I sizes.
    pub metadata_sizes: Vec<u32>,
    /// Probability that a program starts with the shared 5-tuple hash MAT
    /// (the cross-program redundancy §IV motivates with software-defined
    /// measurement). Its first own table then consumes the hash index, so
    /// merged deployments see realistic cross-program dependencies.
    pub shared_hash_probability: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            tables_min: 10,
            tables_max: 20,
            dependency_probability: 0.3,
            resource_min: 0.1,
            resource_max: 0.5,
            metadata_sizes: vec![4, 6, 12, 4, 2, 1],
            shared_hash_probability: 0.5,
        }
    }
}

impl SyntheticConfig {
    fn validate(&self) {
        assert!(self.tables_min >= 1 && self.tables_min <= self.tables_max, "bad table range");
        assert!(
            (0.0..=1.0).contains(&self.dependency_probability),
            "dependency probability must be in [0, 1]"
        );
        assert!(
            self.resource_min > 0.0 && self.resource_min <= self.resource_max,
            "bad resource range"
        );
        assert!(!self.metadata_sizes.is_empty(), "need at least one metadata size");
        assert!(
            (0.0..=1.0).contains(&self.shared_hash_probability),
            "shared-hash probability must be in [0, 1]"
        );
    }
}

/// Deterministic synthetic program generator.
///
/// The same `(seed, config)` always yields the same sequence of programs,
/// which keeps every experiment reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use hermes_dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
///
/// let mut generator = SyntheticGenerator::new(7, SyntheticConfig::default());
/// let programs = generator.programs(40);
/// assert_eq!(programs.len(), 40);
/// for p in &programs {
///     // 10–20 own tables, plus possibly the shared `hash_5tuple` MAT.
///     let own = p.tables().iter().filter(|t| t.name() != "hash_5tuple").count();
///     assert!((10..=20).contains(&own));
/// }
/// ```
#[derive(Debug)]
pub struct SyntheticGenerator {
    rng: StdRng,
    config: SyntheticConfig,
    next_id: usize,
}

impl SyntheticGenerator {
    /// Creates a generator with the given seed and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (empty ranges, a
    /// probability outside `[0, 1]`, or no metadata sizes).
    pub fn new(seed: u64, config: SyntheticConfig) -> Self {
        config.validate();
        SyntheticGenerator { rng: StdRng::seed_from_u64(seed), config, next_id: 0 }
    }

    /// Generates the next synthetic program.
    #[allow(clippy::needless_range_loop)] // paired (i, j) MAT indices drive the dependency draws
    pub fn next_program(&mut self) -> Program {
        let id = self.next_id;
        self.next_id += 1;
        let name = format!("syn{id:03}");
        let n = self.rng.random_range(self.config.tables_min..=self.config.tables_max);

        // Decide the dependency pairs first, then materialize fields.
        let mut writes: Vec<Vec<Field>> = vec![Vec::new(); n];
        let mut matches: Vec<Vec<Field>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if self.rng.random_bool(self.config.dependency_probability) {
                    let size_idx = self.rng.random_range(0..self.config.metadata_sizes.len());
                    let size = self.config.metadata_sizes[size_idx];
                    let field = Field::metadata(format!("meta.{name}_d{i}_{j}"), size);
                    writes[i].push(field.clone());
                    matches[j].push(field);
                }
            }
        }

        let mut builder = Program::builder(name.clone());
        let uses_shared_hash = self.rng.random_bool(self.config.shared_hash_probability);
        if uses_shared_hash {
            builder = builder.table(crate::library::hash_5tuple_mat());
        }
        for (i, (written, matched)) in writes.into_iter().zip(matches).enumerate() {
            let resource =
                self.rng.random_range(self.config.resource_min..=self.config.resource_max);
            let mut mat = Mat::builder(format!("{name}_t{i}"))
                // Every table also matches a header field, like real tables do.
                .match_field(headers::ipv4_dst(), MatchKind::Exact)
                .resource(resource)
                .capacity(1024);
            if i == 0 && uses_shared_hash {
                // The program's entry table consumes the shared hash index.
                mat = mat.match_field(Field::metadata("meta.hash_idx", 4), MatchKind::Exact);
            }
            for f in matched {
                mat = mat.match_field(f, MatchKind::Exact);
            }
            mat = mat.action(Action::writing("act", written));
            builder = builder.table(expect(mat.build()));
        }
        builder.build().expect("generated program is structurally valid")
    }

    /// Generates `count` programs.
    pub fn programs(&mut self, count: usize) -> Vec<Program> {
        (0..count).map(|_| self.next_program()).collect()
    }
}

fn expect(mat: Result<Mat, crate::mat::BuildMatError>) -> Mat {
    mat.expect("synthetic tables are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SyntheticGenerator::new(42, SyntheticConfig::default());
        let mut b = SyntheticGenerator::new(42, SyntheticConfig::default());
        assert_eq!(a.programs(5), b.programs(5));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticGenerator::new(1, SyntheticConfig::default());
        let mut b = SyntheticGenerator::new(2, SyntheticConfig::default());
        assert_ne!(a.programs(3), b.programs(3));
    }

    #[test]
    fn respects_configured_ranges() {
        let mut generator = SyntheticGenerator::new(9, SyntheticConfig::default());
        for p in generator.programs(20) {
            let own: Vec<_> = p.tables().iter().filter(|t| t.name() != "hash_5tuple").collect();
            assert!((10..=20).contains(&own.len()));
            for t in own {
                assert!((0.1..=0.5).contains(&t.resource()), "resource {}", t.resource());
            }
        }
    }

    #[test]
    fn shared_hash_appears_with_configured_probability() {
        let mut generator = SyntheticGenerator::new(5, SyntheticConfig::default());
        let programs = generator.programs(100);
        let with_hash = programs.iter().filter(|p| p.table("hash_5tuple").is_some()).count();
        assert!((35..=65).contains(&with_hash), "{with_hash}/100 share the hash");
        // The entry table of sharing programs consumes the index.
        let sharer = programs.iter().find(|p| p.table("hash_5tuple").is_some()).unwrap();
        let entry = &sharer.tables()[1];
        assert!(entry.match_fields().iter().any(|f| f.name() == "meta.hash_idx"));
    }

    #[test]
    fn dependency_density_near_configured_probability() {
        let mut generator = SyntheticGenerator::new(11, SyntheticConfig::default());
        let mut dependent = 0usize;
        let mut pairs = 0usize;
        for p in generator.programs(50) {
            let tables = p.tables();
            for i in 0..tables.len() {
                for j in (i + 1)..tables.len() {
                    pairs += 1;
                    let w = tables[i].written_fields();
                    if tables[j].match_fields().iter().any(|f| w.contains(f)) {
                        dependent += 1;
                    }
                }
            }
        }
        let density = dependent as f64 / pairs as f64;
        assert!((0.25..=0.35).contains(&density), "density {density}");
    }

    #[test]
    fn program_names_are_unique_and_sequential() {
        let mut generator = SyntheticGenerator::new(3, SyntheticConfig::default());
        let programs = generator.programs(3);
        assert_eq!(programs[0].name(), "syn000");
        assert_eq!(programs[2].name(), "syn002");
    }

    #[test]
    #[should_panic(expected = "dependency probability")]
    fn invalid_probability_panics() {
        let config = SyntheticConfig { dependency_probability: 1.5, ..Default::default() };
        let _ = SyntheticGenerator::new(0, config);
    }
}
