//! A small P4-flavoured textual DSL for data plane programs.
//!
//! The paper's input is a set of P4 programs; this module provides the
//! equivalent textual front end so programs can live in files rather than
//! Rust constructors. The grammar (informally):
//!
//! ```text
//! program <name> {
//!     header   <field.name>: <bytes>;
//!     metadata <field.name>: <bytes>;
//!
//!     table <name> {
//!         key { <field>: exact|lpm|ternary|range; ... }
//!         actions {
//!             <action> {
//!                 <field> = const();
//!                 <field> = copy(<field>);
//!                 <field> = compute(<field>, ...);
//!                 <field> = hash(<field>, ...);
//!                 <field> = fold_add|fold_max|fold_min|fold_or(<field>, ...);
//!                 [<field> =] register(<field>);
//!                 drop();
//!                 forward(<field>);
//!             }
//!             ...
//!         }
//!         capacity <n>;
//!         resource <fraction>;
//!     }
//!     ...
//!     gate <table> -> <table>;
//! }
//! ```
//!
//! Tables appear in program order; `gate` declares a successor (𝕊)
//! dependency. Every field must be declared before use so widths and
//! header/metadata kinds are unambiguous.

use crate::action::{Action, FoldOp, PrimitiveOp};
use crate::fields::{Field, FieldKind};
use crate::mat::{Mat, MatchKind};
use crate::program::Program;
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Equals,
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Number(n) => write!(f, "`{n}`"),
            Token::LBrace => f.write_str("`{`"),
            Token::RBrace => f.write_str("`}`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::Colon => f.write_str("`:`"),
            Token::Semi => f.write_str("`;`"),
            Token::Comma => f.write_str("`,`"),
            Token::Equals => f.write_str("`=`"),
            Token::Arrow => f.write_str("`->`"),
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push((Token::LBrace, line));
                chars.next();
            }
            '}' => {
                out.push((Token::RBrace, line));
                chars.next();
            }
            '(' => {
                out.push((Token::LParen, line));
                chars.next();
            }
            ')' => {
                out.push((Token::RParen, line));
                chars.next();
            }
            ':' => {
                out.push((Token::Colon, line));
                chars.next();
            }
            ';' => {
                out.push((Token::Semi, line));
                chars.next();
            }
            ',' => {
                out.push((Token::Comma, line));
                chars.next();
            }
            '=' => {
                out.push((Token::Equals, line));
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push((Token::Arrow, line));
                } else {
                    return Err(ParseError { line, message: "expected `->` after `-`".into() });
                }
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n = s
                    .parse::<f64>()
                    .map_err(|_| ParseError { line, message: format!("bad number `{s}`") })?;
                out.push((Token::Number(n), line));
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Token::Ident(s), line));
            }
            other => {
                return Err(ParseError { line, message: format!("unexpected character `{other}`") })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    fields: BTreeMap<String, Field>,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map_or(1, |(_, l)| *l)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let token = self
            .tokens
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(token)
    }

    fn expect(&mut self, want: Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error(format!("expected {want}, found {got}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected {what}, found {other}")))
            }
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.next()? {
            Token::Number(n) => Ok(n),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected {what}, found {other}")))
            }
        }
    }

    fn field(&mut self) -> Result<Field, ParseError> {
        let name = self.ident("a field name")?;
        self.fields
            .get(&name)
            .cloned()
            .ok_or_else(|| self.error(format!("field `{name}` used before declaration")))
    }

    fn field_decl(&mut self, kind: FieldKind) -> Result<(), ParseError> {
        let name = self.ident("a field name")?;
        self.expect(Token::Colon)?;
        let size = self.number("a byte width")?;
        if size < 1.0 || size.fract() != 0.0 {
            return Err(self.error(format!("field `{name}` width must be a positive integer")));
        }
        self.expect(Token::Semi)?;
        if self.fields.contains_key(&name) {
            return Err(self.error(format!("field `{name}` declared twice")));
        }
        self.fields.insert(name.clone(), Field::new(name, kind, size as u32));
        Ok(())
    }

    fn statement(&mut self) -> Result<PrimitiveOp, ParseError> {
        // Either `drop();` / `register(x);` / `forward(x);`, or
        // `<field> = <func>(args);`
        let first = self.ident("a statement")?;
        match self.peek() {
            Some(Token::LParen) => {
                // No-assignment form.
                self.expect(Token::LParen)?;
                let op = match first.as_str() {
                    "drop" => {
                        self.expect(Token::RParen)?;
                        PrimitiveOp::Drop
                    }
                    "register" => {
                        let index = self.field()?;
                        self.expect(Token::RParen)?;
                        PrimitiveOp::RegisterOp { index, out: None }
                    }
                    "forward" => {
                        let port = self.field()?;
                        self.expect(Token::RParen)?;
                        PrimitiveOp::Forward { port }
                    }
                    other => {
                        return Err(self.error(format!(
                            "unknown statement `{other}` (expected drop/register/forward)"
                        )))
                    }
                };
                self.expect(Token::Semi)?;
                Ok(op)
            }
            _ => {
                // Assignment form: first is the destination field.
                let dst = self.fields.get(&first).cloned().ok_or_else(|| {
                    self.error(format!("field `{first}` used before declaration"))
                })?;
                self.expect(Token::Equals)?;
                let func = self.ident("a function (const/copy/compute/hash/register)")?;
                self.expect(Token::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        args.push(self.field()?);
                        if self.peek() == Some(&Token::Comma) {
                            self.expect(Token::Comma)?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Token::RParen)?;
                self.expect(Token::Semi)?;
                let op = match (func.as_str(), args.len()) {
                    ("const", 0) => PrimitiveOp::SetConst { dst },
                    ("copy", 1) => {
                        PrimitiveOp::Copy { dst, src: args.into_iter().next().expect("len 1") }
                    }
                    ("compute", _) => PrimitiveOp::Compute { dst, srcs: args },
                    ("hash", _) => PrimitiveOp::Hash { dst, srcs: args },
                    ("register", 1) => PrimitiveOp::RegisterOp {
                        index: args.into_iter().next().expect("len 1"),
                        out: Some(dst),
                    },
                    ("fold_add", _) => PrimitiveOp::Fold { dst, srcs: args, op: FoldOp::Add },
                    ("fold_max", _) => PrimitiveOp::Fold { dst, srcs: args, op: FoldOp::Max },
                    ("fold_min", _) => PrimitiveOp::Fold { dst, srcs: args, op: FoldOp::Min },
                    ("fold_or", _) => PrimitiveOp::Fold { dst, srcs: args, op: FoldOp::Or },
                    (f, n) => {
                        return Err(self.error(format!("bad call `{f}` with {n} argument(s)")))
                    }
                };
                Ok(op)
            }
        }
    }

    fn table(&mut self) -> Result<Mat, ParseError> {
        let name = self.ident("a table name")?;
        self.expect(Token::LBrace)?;
        let mut builder = Mat::builder(name.clone());
        let mut capacity: Option<usize> = None;
        let mut resource: Option<f64> = None;
        loop {
            match self.next()? {
                Token::RBrace => break,
                Token::Ident(section) => match section.as_str() {
                    "key" => {
                        self.expect(Token::LBrace)?;
                        while self.peek() != Some(&Token::RBrace) {
                            let field = self.field()?;
                            self.expect(Token::Colon)?;
                            let kind = match self.ident("a match kind")?.as_str() {
                                "exact" => MatchKind::Exact,
                                "lpm" => MatchKind::Lpm,
                                "ternary" => MatchKind::Ternary,
                                "range" => MatchKind::Range,
                                other => {
                                    return Err(self.error(format!("unknown match kind `{other}`")))
                                }
                            };
                            self.expect(Token::Semi)?;
                            builder = builder.match_field(field, kind);
                        }
                        self.expect(Token::RBrace)?;
                    }
                    "actions" => {
                        self.expect(Token::LBrace)?;
                        while self.peek() != Some(&Token::RBrace) {
                            let action_name = self.ident("an action name")?;
                            self.expect(Token::LBrace)?;
                            let mut action = Action::new(action_name);
                            while self.peek() != Some(&Token::RBrace) {
                                action = action.with_op(self.statement()?);
                            }
                            self.expect(Token::RBrace)?;
                            builder = builder.action(action);
                        }
                        self.expect(Token::RBrace)?;
                    }
                    "capacity" => {
                        let n = self.number("a capacity")?;
                        self.expect(Token::Semi)?;
                        capacity = Some(n as usize);
                    }
                    "resource" => {
                        let r = self.number("a resource fraction")?;
                        self.expect(Token::Semi)?;
                        resource = Some(r);
                    }
                    other => {
                        let msg = format!(
                            "unknown table section `{other}` (expected key/actions/capacity/resource)"
                        );
                        return Err(self.error(msg));
                    }
                },
                other => return Err(self.error(format!("unexpected {other} in table `{name}`"))),
            }
        }
        if let Some(c) = capacity {
            builder = builder.capacity(c);
        }
        if let Some(r) = resource {
            builder = builder.resource(r);
        }
        builder.build().map_err(|e| self.error(e.to_string()))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        match self.ident("`program`")?.as_str() {
            "program" => {}
            other => return Err(self.error(format!("expected `program`, found `{other}`"))),
        }
        let name = self.ident("a program name")?;
        self.expect(Token::LBrace)?;
        let mut builder = Program::builder(name);
        loop {
            match self.next()? {
                Token::RBrace => break,
                Token::Ident(section) => match section.as_str() {
                    "header" => self.field_decl(FieldKind::Header)?,
                    "metadata" => self.field_decl(FieldKind::Metadata)?,
                    "table" => {
                        builder = builder.table(self.table()?);
                    }
                    "gate" => {
                        let from = self.ident("a table name")?;
                        self.expect(Token::Arrow)?;
                        let to = self.ident("a table name")?;
                        self.expect(Token::Semi)?;
                        builder = builder.gate(from, to);
                    }
                    other => {
                        return Err(self.error(format!(
                            "unknown section `{other}` (expected header/metadata/table/gate)"
                        )))
                    }
                },
                other => return Err(self.error(format!("unexpected {other} at program level"))),
            }
        }
        builder.build().map_err(|e| self.error(e.to_string()))
    }
}

/// Parses one program from DSL text.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on malformed input,
/// undeclared fields, or structurally invalid tables/programs.
///
/// # Examples
///
/// ```
/// let src = r#"
/// program counter {
///     header ipv4.src: 4;
///     metadata meta.idx: 4;
///
///     table hash {
///         actions { go { meta.idx = hash(ipv4.src); } }
///         resource 0.1;
///     }
///     table count {
///         key { meta.idx: exact; }
///         actions { bump { register(meta.idx); } }
///         resource 0.3;
///     }
/// }
/// "#;
/// let program = hermes_dataplane::parser::parse_program(src)?;
/// assert_eq!(program.name(), "counter");
/// assert_eq!(program.tables().len(), 2);
/// # Ok::<(), hermes_dataplane::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0, fields: BTreeMap::new() };
    let program = parser.program()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("trailing input after program"));
    }
    Ok(program)
}

/// Parses a file of several programs (concatenated `program` blocks).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_programs(src: &str) -> Result<Vec<Program>, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0, fields: BTreeMap::new() };
    let mut out = Vec::new();
    while parser.pos < parser.tokens.len() {
        // Field namespaces are per-file: declarations carry across
        // programs so shared fields (e.g. a common hash index) agree.
        out.push(parser.program()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        # A hash-and-count program.
        program counter {
            header ipv4.src: 4;
            header ipv4.dst: 4;
            metadata meta.idx: 4;
            metadata meta.count: 4;

            table hash {
                actions { go { meta.idx = hash(ipv4.src, ipv4.dst); } }
                capacity 1;
                resource 0.1;
            }
            table count {
                key { meta.idx: exact; }
                actions { bump { meta.count = register(meta.idx); } }
                resource 0.3;
            }
            table export {
                key { meta.count: exact; }
                actions { fwd { forward(meta.idx); } drop_it { drop(); } }
                resource 0.1;
            }
            gate count -> export;
        }
    "#;

    #[test]
    fn parses_a_full_program() {
        let p = parse_program(COUNTER).unwrap();
        assert_eq!(p.name(), "counter");
        assert_eq!(p.tables().len(), 3);
        assert_eq!(p.gates(), &[(1, 2)]);
        let hash = p.table("hash").unwrap();
        assert_eq!(hash.resource(), 0.1);
        assert!(hash.written_fields().contains(&Field::metadata("meta.idx", 4)));
        let export = p.table("export").unwrap();
        assert_eq!(export.actions().len(), 2);
    }

    #[test]
    fn parsed_program_feeds_dependency_inference() {
        // The parser output must behave identically to built programs.
        let p = parse_program(COUNTER).unwrap();
        let hash = p.table("hash").unwrap();
        let count = p.table("count").unwrap();
        let written = hash.written_metadata();
        assert!(count.match_fields().iter().any(|f| written.contains(f)));
    }

    #[test]
    fn fold_statements_parse_to_fold_ops() {
        let src = r#"
            program agg {
                header pkt.val: 4;
                metadata meta.sum: 4;
                metadata meta.peak: 4;
                table accumulate {
                    actions {
                        add { meta.sum = fold_add(pkt.val); }
                        peak { meta.peak = fold_max(pkt.val); }
                    }
                    resource 0.5;
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let t = p.table("accumulate").unwrap();
        let ops: Vec<_> = t.actions().iter().flat_map(|a| a.ops()).collect();
        let sum = Field::metadata("meta.sum", 4);
        assert!(ops.iter().any(|op| matches!(
            op,
            PrimitiveOp::Fold { dst, op: FoldOp::Add, .. } if *dst == sum
        )));
        assert!(ops.iter().any(|op| matches!(op, PrimitiveOp::Fold { op: FoldOp::Max, .. })));
        // Folds read their accumulator.
        assert!(t.action_read_fields().contains(&sum));
    }

    #[test]
    fn undeclared_field_is_an_error() {
        let err = parse_program(
            "program p { table t { key { nope: exact; } actions { a { drop(); } } } }",
        )
        .unwrap_err();
        assert!(err.message.contains("before declaration"), "{err}");
    }

    #[test]
    fn duplicate_field_is_an_error() {
        let err = parse_program("program p { header x: 4; header x: 4; }").unwrap_err();
        assert!(err.message.contains("declared twice"), "{err}");
    }

    #[test]
    fn bad_match_kind_is_an_error() {
        let err =
            parse_program("program p { header x: 4; table t { key { x: fuzzy; } } }").unwrap_err();
        assert!(err.message.contains("unknown match kind"), "{err}");
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "program p {\n  header x: 4;\n  junk;\n}";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, 3, "{err}");
    }

    #[test]
    fn multiple_programs_share_field_declarations() {
        let src = r#"
            program a {
                header ipv4.src: 4;
                metadata meta.idx: 4;
                table h { actions { go { meta.idx = hash(ipv4.src); } } resource 0.1; }
            }
            program b {
                table consume {
                    key { meta.idx: exact; }
                    actions { n { register(meta.idx); } }
                    resource 0.2;
                }
            }
        "#;
        let programs = parse_programs(src).unwrap();
        assert_eq!(programs.len(), 2);
        // Program b's key resolves against the shared declaration.
        assert_eq!(programs[1].tables()[0].match_fields().iter().next().unwrap().size_bytes(), 4);
    }

    #[test]
    fn gate_to_missing_table_is_an_error() {
        let err = parse_program("program p { header x: 4; gate a -> b; }").unwrap_err();
        assert!(err.message.contains("unknown table"), "{err}");
    }

    #[test]
    fn unexpected_character_reported() {
        let err = parse_program("program p { @ }").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
    }

    #[test]
    fn capacity_and_resource_applied() {
        let p = parse_program(
            "program p { header x: 4; table t { key { x: exact; } actions { a { drop(); } } capacity 77; resource 0.5; } }",
        )
        .unwrap();
        let t = p.table("t").unwrap();
        assert_eq!(t.capacity(), 77);
        assert_eq!(t.resource(), 0.5);
    }

    #[test]
    fn round_trip_through_tdg_and_deployment_types() {
        // Parsed programs are first-class: structural equality with the
        // builder API for an equivalent definition.
        let built = {
            let src4 = Field::header("ipv4.src", 4);
            let idx = Field::metadata("meta.idx", 4);
            let hash = Mat::builder("h")
                .action(
                    Action::new("go")
                        .with_op(PrimitiveOp::Hash { dst: idx.clone(), srcs: vec![src4.clone()] }),
                )
                .resource(0.1)
                .build()
                .unwrap();
            Program::builder("p").table(hash).build().unwrap()
        };
        let parsed = parse_program(
            "program p { header ipv4.src: 4; metadata meta.idx: 4; table h { actions { go { meta.idx = hash(ipv4.src); } } resource 0.1; } }",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }
}
