//! A library of realistic data plane programs.
//!
//! These stand in for the ten `switch.p4`-derived programs of the paper's
//! evaluation. Each models a well-known data plane function with the MAT
//! structure, dependency shape, and Table-I metadata sizes that function
//! uses in practice. Several programs deliberately share structurally
//! identical tables (e.g. the 5-tuple hash) so that TDG merging has real
//! redundancy to eliminate.

use crate::action::{Action, PrimitiveOp};
use crate::fields::{headers, metadata, Field};
use crate::mat::{Mat, MatchKind, Rule};
use crate::program::Program;

/// The shared 5-tuple hash table: computes a 4-byte counter index from the
/// IPv4 5-tuple. Identical (same signature) across every program that calls
/// it, which is exactly the redundancy SPEED-style merging exploits.
pub fn hash_5tuple_mat() -> Mat {
    let idx = Field::metadata("meta.hash_idx", metadata::COUNTER_INDEX_BYTES);
    Mat::builder("hash_5tuple")
        .action(Action::new("compute").with_op(PrimitiveOp::Hash {
            dst: idx,
            srcs: vec![
                headers::ipv4_src(),
                headers::ipv4_dst(),
                headers::ipv4_proto(),
                headers::l4_sport(),
                headers::l4_dport(),
            ],
        }))
        .rule(Rule::new(Vec::<String>::new(), "compute"))
        .capacity(1)
        .resource(0.40)
        .build()
        .expect("static table")
}

fn expect(mat: crate::mat::MatBuilder) -> Mat {
    mat.build().expect("library tables are statically valid")
}

/// Basic L3 router: VLAN/port mapping, LPM route lookup producing a next-hop
/// index, and next-hop resolution consuming it (a match dependency carrying
/// 4 B of metadata). Mirrors the `switch.p4` L3 slice.
pub fn l3_router() -> Program {
    let nexthop = Field::metadata("meta.nexthop", 4);
    let port_vlan = expect(
        Mat::builder("port_vlan")
            .match_field(headers::vlan_id(), MatchKind::Exact)
            .action(Action::writing("set_vrf", [Field::metadata("meta.vrf", 2)]))
            .capacity(512)
            .resource(0.90),
    );
    let ipv4_lpm = expect(
        Mat::builder("ipv4_lpm")
            .match_field(Field::metadata("meta.vrf", 2), MatchKind::Exact)
            .match_field(headers::ipv4_dst(), MatchKind::Lpm)
            .action(Action::writing("set_nexthop", [nexthop.clone()]))
            .rule(Rule::new(["0", "10.0.0.0/8"], "set_nexthop"))
            .capacity(4096)
            .resource(2.70),
    );
    let nexthop_tbl = expect(
        Mat::builder("nexthop")
            .match_field(nexthop, MatchKind::Exact)
            .action(
                Action::new("rewrite")
                    .with_op(PrimitiveOp::Compute { dst: headers::eth_dst(), srcs: vec![] })
                    .with_op(PrimitiveOp::Compute {
                        dst: headers::ipv4_ttl(),
                        srcs: vec![headers::ipv4_ttl()],
                    }),
            )
            .capacity(1024)
            .resource(1.50),
    );
    Program::builder("l3_router")
        .table(port_vlan)
        .table(ipv4_lpm)
        .table(nexthop_tbl)
        .build()
        .expect("static program")
}

/// Stateless ACL: a ternary 5-tuple classifier emitting a 1-byte verdict,
/// followed by a verdict-keyed statistics table (match dependency).
pub fn acl() -> Program {
    let verdict = Field::metadata("meta.acl_verdict", 1);
    let classify = expect(
        Mat::builder("acl_classify")
            .match_field(headers::ipv4_src(), MatchKind::Ternary)
            .match_field(headers::ipv4_dst(), MatchKind::Ternary)
            .match_field(headers::l4_dport(), MatchKind::Range)
            .action(Action::writing("permit", [verdict.clone()]))
            .action(
                Action::new("deny")
                    .with_op(PrimitiveOp::Compute { dst: verdict.clone(), srcs: vec![] })
                    .with_op(PrimitiveOp::Drop),
            )
            .capacity(2048)
            .resource(3.00),
    );
    let stats = expect(
        Mat::builder("acl_stats")
            .match_field(verdict, MatchKind::Exact)
            .action(Action::new("count").with_op(PrimitiveOp::RegisterOp {
                index: Field::metadata("meta.acl_verdict", 1),
                out: None,
            }))
            .capacity(4)
            .resource(0.60),
    );
    Program::builder("acl").table(classify).table(stats).build().expect("static program")
}

/// Source NAT: lookup writes the translated address and a hit flag; the
/// rewrite stage consumes both (match dependency, 5 B).
pub fn nat() -> Program {
    let new_src = Field::metadata("meta.nat_src", 4);
    let hit = Field::metadata("meta.nat_hit", 1);
    let lookup = expect(
        Mat::builder("nat_lookup")
            .match_field(headers::ipv4_src(), MatchKind::Exact)
            .match_field(headers::l4_sport(), MatchKind::Exact)
            .action(Action::writing("translate", [new_src.clone(), hit.clone()]))
            .capacity(8192)
            .resource(2.40),
    );
    let rewrite = expect(
        Mat::builder("nat_rewrite")
            .match_field(hit, MatchKind::Exact)
            .action(
                Action::new("apply")
                    .with_op(PrimitiveOp::Copy { dst: headers::ipv4_src(), src: new_src }),
            )
            .capacity(2)
            .resource(0.60),
    );
    Program::builder("nat").table(lookup).table(rewrite).build().expect("static program")
}

/// Tunnel termination: decap decision, tunnel-id lookup (4 B metadata), and
/// re-encapsulation keyed on the tunnel id.
pub fn tunnel() -> Program {
    let tid = Field::metadata("meta.tunnel_id", 4);
    let decap = expect(
        Mat::builder("tunnel_decap")
            .match_field(headers::ipv4_proto(), MatchKind::Exact)
            .action(Action::writing("mark", [Field::metadata("meta.decap", 1)]))
            .capacity(16)
            .resource(0.60),
    );
    let term = expect(
        Mat::builder("tunnel_term")
            .match_field(Field::metadata("meta.decap", 1), MatchKind::Exact)
            .match_field(headers::ipv4_dst(), MatchKind::Exact)
            .action(Action::writing("set_tunnel", [tid.clone()]))
            .capacity(4096)
            .resource(2.10),
    );
    let encap = expect(
        Mat::builder("tunnel_encap")
            .match_field(tid, MatchKind::Exact)
            .action(
                Action::new("encap")
                    .with_op(PrimitiveOp::Compute { dst: headers::ipv4_dst(), srcs: vec![] }),
            )
            .capacity(4096)
            .resource(2.10),
    );
    Program::builder("tunnel")
        .table(decap)
        .table(term)
        .table(encap)
        .build()
        .expect("static program")
}

/// ECMP load balancer: shared 5-tuple hash, group selection (2 B member
/// index), and member resolution (4 B next hop).
pub fn ecmp_lb() -> Program {
    let member = Field::metadata("meta.ecmp_member", 2);
    let nexthop = Field::metadata("meta.lb_nexthop", 4);
    let group = expect(
        Mat::builder("ecmp_group")
            .match_field(Field::metadata("meta.hash_idx", 4), MatchKind::Exact)
            .match_field(headers::ipv4_dst(), MatchKind::Lpm)
            .action(Action::writing("pick_member", [member.clone()]))
            .capacity(1024)
            .resource(1.80),
    );
    let resolve = expect(
        Mat::builder("ecmp_member")
            .match_field(member, MatchKind::Exact)
            .action(Action::writing("set_nh", [nexthop.clone()]))
            .capacity(256)
            .resource(0.90),
    );
    let forward = expect(
        Mat::builder("ecmp_forward")
            .match_field(nexthop, MatchKind::Exact)
            .action(
                Action::new("fw")
                    .with_op(PrimitiveOp::Forward { port: Field::metadata("meta.egress_port", 2) }),
            )
            .capacity(256)
            .resource(0.90),
    );
    Program::builder("ecmp_lb")
        .table(hash_5tuple_mat())
        .table(group)
        .table(resolve)
        .table(forward)
        .build()
        .expect("static program")
}

/// In-band network telemetry: the source stage stamps switch id (4 B),
/// timestamps (12 B), and queue lengths (6 B); transit aggregates them; the
/// sink is gated on a report decision — the heaviest metadata producer in
/// the library, as INT is in the paper's motivation.
pub fn int_telemetry() -> Program {
    let swid = metadata::switch_identifier("meta.int_swid");
    let ts = metadata::timestamps("meta.int_ts");
    let qlen = metadata::queue_lengths("meta.int_qlen");
    let report = Field::metadata("meta.int_report", 1);
    let source = expect(
        Mat::builder("int_source")
            .match_field(headers::ipv4_dscp(), MatchKind::Exact)
            .action(Action::writing("stamp", [swid.clone(), ts.clone(), qlen.clone()]))
            .capacity(64)
            .resource(1.20),
    );
    let transit = expect(
        Mat::builder("int_transit")
            .match_field(swid.clone(), MatchKind::Exact)
            .action(Action::new("aggregate").with_op(PrimitiveOp::Compute {
                dst: report.clone(),
                srcs: vec![ts.clone(), qlen.clone()],
            }))
            .capacity(64)
            .resource(1.50),
    );
    let sink = expect(
        Mat::builder("int_sink")
            .match_field(report.clone(), MatchKind::Exact)
            .action(
                Action::new("emit")
                    .with_op(PrimitiveOp::Forward { port: Field::metadata("meta.mirror_port", 2) }),
            )
            .capacity(8)
            .resource(0.60),
    );
    Program::builder("int_telemetry")
        .table(source)
        .table(transit)
        .table(sink)
        .gate("int_transit", "int_sink")
        .build()
        .expect("static program")
}

/// Stateful firewall: shared 5-tuple hash indexes a connection-state
/// register; the decision table is gated on the looked-up state.
pub fn stateful_firewall() -> Program {
    let state = Field::metadata("meta.conn_state", 1);
    let conn_state = expect(
        Mat::builder("conn_state")
            .match_field(headers::tcp_flags(), MatchKind::Ternary)
            .action(Action::new("lookup").with_op(PrimitiveOp::RegisterOp {
                index: Field::metadata("meta.hash_idx", 4),
                out: Some(state.clone()),
            }))
            .capacity(16)
            .resource(1.80),
    );
    let decision = expect(
        Mat::builder("fw_decision")
            .match_field(state, MatchKind::Exact)
            .action(Action::new("allow"))
            .action(Action::new("deny").with_op(PrimitiveOp::Drop))
            .capacity(8)
            .resource(0.60),
    );
    Program::builder("stateful_firewall")
        .table(hash_5tuple_mat())
        .table(conn_state)
        .table(decision)
        .gate("conn_state", "fw_decision")
        .build()
        .expect("static program")
}

/// Two-rate three-color QoS meter: classification (1 B class), metering
/// (1 B color), and a policer gated on the color.
pub fn qos_meter() -> Program {
    let class = Field::metadata("meta.qos_class", 1);
    let color = Field::metadata("meta.qos_color", 1);
    let classify = expect(
        Mat::builder("qos_classify")
            .match_field(headers::ipv4_dscp(), MatchKind::Exact)
            .match_field(headers::l4_dport(), MatchKind::Range)
            .action(Action::writing("set_class", [class.clone()]))
            .capacity(256)
            .resource(1.20),
    );
    let meter = expect(
        Mat::builder("qos_meter")
            .match_field(class, MatchKind::Exact)
            .action(Action::new("meter").with_op(PrimitiveOp::RegisterOp {
                index: Field::metadata("meta.qos_class", 1),
                out: Some(color.clone()),
            }))
            .capacity(256)
            .resource(1.50),
    );
    let police = expect(
        Mat::builder("qos_police")
            .match_field(color, MatchKind::Exact)
            .action(Action::new("pass"))
            .action(Action::new("drop").with_op(PrimitiveOp::Drop))
            .capacity(4)
            .resource(0.60),
    );
    Program::builder("qos_meter")
        .table(classify)
        .table(meter)
        .table(police)
        .gate("qos_meter", "qos_police")
        .build()
        .expect("static program")
}

/// Count-min sketch over the 5-tuple (software-defined measurement).
pub fn cm_sketch() -> Program {
    sketches::count_min()
}

/// Elastic-sketch heavy-hitter detection (software-defined measurement).
pub fn hh_detect() -> Program {
    sketches::elastic()
}

/// The ten "real" programs used in testbed experiments (Exp#1), analogous to
/// the ten `switch.p4` variants of the paper.
pub fn real_programs() -> Vec<Program> {
    vec![
        l3_router(),
        acl(),
        nat(),
        tunnel(),
        ecmp_lb(),
        int_telemetry(),
        stateful_firewall(),
        qos_meter(),
        cm_sketch(),
        hh_detect(),
    ]
}

/// In-network compute workloads: P4COM-style aggregation and
/// map/reduce-on-switch programs whose state accesses exercise every point
/// of the state-access lattice (`ReadOnly`, `ReadMostlyReplicable`,
/// `CommutativeUpdate`, `SingleWriter`). These are the workloads whose
/// placements the `RelaxedState` TDG mode is allowed to improve.
pub mod aggregation {
    use super::*;
    use crate::action::FoldOp;

    /// All-reduce aggregation (P4COM style): three heavy worker stages each
    /// fold their rank's contribution (a header field, so `ReadOnly`) into
    /// one shared sum with `fold_add` — a `CommutativeUpdate` accumulator —
    /// and an emit stage consumes the total. Worker→worker dependencies
    /// exist only through the accumulator, so they are exactly the edges
    /// relaxation may drop; worker→emit edges must keep their bytes.
    pub fn allreduce() -> Program {
        let val = Field::header("pkt.val", 4);
        let sum = Field::metadata("meta.agg_sum", 4);
        // Rank-specific action names keep the workers structurally
        // distinct: they aggregate different ranks' traffic, so the TDG
        // merge must not fold them into one MAT.
        let worker = |i: usize| {
            expect(
                Mat::builder(format!("agg_rank{i}"))
                    .action(Action::new(format!("accumulate_rank{i}")).with_op(PrimitiveOp::Fold {
                        dst: sum.clone(),
                        srcs: vec![val.clone()],
                        op: FoldOp::Add,
                    }))
                    .capacity(16)
                    .resource(5.0),
            )
        };
        let emit = expect(
            Mat::builder("agg_emit")
                .action(
                    Action::new("report")
                        .with_op(PrimitiveOp::Compute {
                            dst: Field::header("pkt.result", 4),
                            srcs: vec![sum.clone()],
                        })
                        .with_op(PrimitiveOp::Forward {
                            port: Field::metadata("meta.agg_port", 2),
                        }),
                )
                .capacity(4)
                .resource(0.6),
        );
        Program::builder("allreduce")
            .table(worker(0))
            .table(worker(1))
            .table(worker(2))
            .table(emit)
            .build()
            .expect("static program")
    }

    /// Map/reduce word count on switch: a replicable hash stage keys the
    /// packet (`ReadMostlyReplicable` once merged with its consumers),
    /// two map stages `fold_add` per-key counts (`CommutativeUpdate`),
    /// and a reduce stage reads the count.
    pub fn wordcount() -> Program {
        let key = Field::metadata("meta.wc_key", 4);
        let count = Field::metadata("meta.wc_count", 4);
        let hash = expect(
            Mat::builder("wc_hash")
                .action(Action::new("key").with_op(PrimitiveOp::Hash {
                    dst: key.clone(),
                    srcs: vec![headers::ipv4_src(), headers::ipv4_dst()],
                }))
                .capacity(1)
                .resource(0.4),
        );
        let map = |i: usize| {
            expect(
                Mat::builder(format!("wc_map{i}"))
                    .match_field(key.clone(), MatchKind::Exact)
                    .action(Action::new(format!("count{i}")).with_op(PrimitiveOp::Fold {
                        dst: count.clone(),
                        srcs: vec![Field::header("pkt.tokens", 2)],
                        op: FoldOp::Add,
                    }))
                    .capacity(1024)
                    .resource(2.0),
            )
        };
        let reduce = expect(
            Mat::builder("wc_reduce")
                .action(Action::new("emit").with_op(PrimitiveOp::Compute {
                    dst: Field::header("pkt.wc_out", 4),
                    srcs: vec![count.clone()],
                }))
                .capacity(4)
                .resource(0.6),
        );
        Program::builder("wordcount")
            .table(hash)
            .table(map(0))
            .table(map(1))
            .table(reduce)
            .build()
            .expect("static program")
    }

    /// Network-wide peak telemetry: transit stages `fold_max` the observed
    /// queue depth (`CommutativeUpdate` via max), while an EWMA stage keeps
    /// a self-referential smoothed value — `meta.tm_ewma = f(meta.tm_ewma,
    /// depth)` is order-sensitive and stays `SingleWriter`.
    pub fn telemetry_max() -> Program {
        let depth = Field::header("pkt.qdepth", 4);
        let peak = Field::metadata("meta.tm_peak", 4);
        let ewma = Field::metadata("meta.tm_ewma", 4);
        let transit = |i: usize| {
            expect(
                Mat::builder(format!("tm_transit{i}"))
                    .action(Action::new(format!("peak{i}")).with_op(PrimitiveOp::Fold {
                        dst: peak.clone(),
                        srcs: vec![depth.clone()],
                        op: FoldOp::Max,
                    }))
                    .capacity(8)
                    .resource(1.2),
            )
        };
        let smooth = expect(
            Mat::builder("tm_smooth")
                .action(Action::new("ewma").with_op(PrimitiveOp::Compute {
                    dst: ewma.clone(),
                    srcs: vec![ewma.clone(), depth.clone()],
                }))
                .capacity(8)
                .resource(1.2),
        );
        let sink = expect(
            Mat::builder("tm_sink")
                .match_field(peak.clone(), MatchKind::Range)
                .action(Action::new("report").with_op(PrimitiveOp::Compute {
                    dst: Field::header("pkt.tm_report", 4),
                    srcs: vec![peak.clone(), ewma.clone()],
                }))
                .capacity(16)
                .resource(0.9),
        );
        Program::builder("telemetry_max")
            .table(transit(0))
            .table(transit(1))
            .table(smooth)
            .table(sink)
            .build()
            .expect("static program")
    }

    /// Replicated-config lookup (Cascone-style read-mostly state): one
    /// stage writes a small policy epoch with a constant (idempotent, no
    /// packet-varying inputs), and three independent consumers match on
    /// it. With more readers than writers and only idempotent writes the
    /// field is `ReadMostlyReplicable`: each consumer's switch can
    /// replicate the producer instead of carrying the value.
    pub fn replicated_config() -> Program {
        let epoch = Field::metadata("meta.cfg_epoch", 1);
        let set = expect(
            Mat::builder("cfg_set")
                .action(Action::new("epoch").with_op(PrimitiveOp::SetConst { dst: epoch.clone() }))
                .capacity(1)
                .resource(0.3),
        );
        let consumer = |name: &str| {
            expect(
                Mat::builder(name.to_owned())
                    .match_field(epoch.clone(), MatchKind::Exact)
                    .action(Action::new("apply"))
                    .capacity(64)
                    .resource(0.9),
            )
        };
        Program::builder("replicated_config")
            .table(set)
            .table(consumer("cfg_acl"))
            .table(consumer("cfg_route"))
            .table(consumer("cfg_qos"))
            .build()
            .expect("static program")
    }

    /// The aggregation/map-reduce workload suite. Deliberately *not* part
    /// of [`real_programs`]: that set reproduces the paper's testbed
    /// workload and its goldens are pinned.
    pub fn all() -> Vec<Program> {
        vec![allreduce(), wordcount(), telemetry_max(), replicated_config()]
    }
}

/// Sketch-based measurement programs (Exp#6 deploys ten of them).
pub mod sketches {
    use super::*;

    /// Builds a generic `d`-row sketch program: one shared 5-tuple hash
    /// stage, `extra_hash` additional per-row hash stages (each producing a
    /// 4-byte index), and one stateful update stage per row consuming the
    /// corresponding index (match dependencies of 4 B each).
    pub fn generic(name: &str, rows: usize, per_row_resource: f64) -> Program {
        assert!(rows >= 1, "a sketch needs at least one row");
        let mut builder = Program::builder(name.to_owned()).table(hash_5tuple_mat());
        for r in 0..rows {
            let idx = if r == 0 {
                Field::metadata("meta.hash_idx", 4)
            } else {
                let idx = Field::metadata(format!("meta.{name}_idx{r}"), 4);
                let hash = expect(
                    Mat::builder(format!("{name}_hash{r}"))
                        .action(Action::new("compute").with_op(PrimitiveOp::Hash {
                            dst: idx.clone(),
                            srcs: vec![headers::ipv4_src(), headers::ipv4_dst()],
                        }))
                        .capacity(1)
                        .resource(0.20),
                );
                builder = builder.table(hash);
                idx
            };
            // The action name carries the sketch name: each sketch updates
            // its own register array, so update stages of different sketches
            // are NOT redundant even when they share the row-0 hash index.
            let update = expect(
                Mat::builder(format!("{name}_update{r}"))
                    .match_field(idx.clone(), MatchKind::Exact)
                    .action(
                        Action::new(format!("bump_{name}"))
                            .with_op(PrimitiveOp::RegisterOp { index: idx, out: None }),
                    )
                    .capacity(4)
                    .resource(per_row_resource),
            );
            builder = builder.table(update);
        }
        builder.build().expect("static sketch program")
    }

    /// Count-min sketch (3 rows).
    pub fn count_min() -> Program {
        generic("cm_sketch", 3, 0.50)
    }
    /// Count sketch (3 rows, signed counters).
    pub fn count_sketch() -> Program {
        generic("count_sketch", 3, 0.60)
    }
    /// Elastic sketch: heavy part + light part (2 rows).
    pub fn elastic() -> Program {
        generic("elastic", 2, 0.70)
    }
    /// UnivMon universal sketch (4 levels).
    pub fn univmon() -> Program {
        generic("univmon", 4, 0.50)
    }
    /// MV-Sketch invertible heavy-flow sketch (2 rows).
    pub fn mv_sketch() -> Program {
        generic("mv_sketch", 2, 0.60)
    }
    /// HashPipe heavy-hitter pipeline (3 stages).
    pub fn hashpipe() -> Program {
        generic("hashpipe", 3, 0.40)
    }
    /// FlowRadar encoded flowset (2 rows).
    pub fn flowradar() -> Program {
        generic("flowradar", 2, 0.80)
    }
    /// Deltoid hierarchical heavy hitters (3 rows).
    pub fn deltoid() -> Program {
        generic("deltoid", 3, 0.50)
    }
    /// K-ary sketch for change detection (3 rows).
    pub fn kary() -> Program {
        generic("kary", 3, 0.50)
    }
    /// SpaceSaving top-k (2 rows).
    pub fn spacesaving() -> Program {
        generic("spacesaving", 2, 0.60)
    }

    /// The ten sketches deployed in Exp#6.
    pub fn all() -> Vec<Program> {
        vec![
            count_min(),
            count_sketch(),
            elastic(),
            univmon(),
            mv_sketch(),
            hashpipe(),
            flowradar(),
            deltoid(),
            kary(),
            spacesaving(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_real_programs() {
        let progs = real_programs();
        assert_eq!(progs.len(), 10);
        let names: std::collections::BTreeSet<_> =
            progs.iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names.len(), 10, "program names must be unique");
    }

    #[test]
    fn ten_sketches() {
        assert_eq!(sketches::all().len(), 10);
    }

    #[test]
    fn aggregation_suite_is_well_formed() {
        let progs = aggregation::all();
        assert_eq!(progs.len(), 4);
        let names: std::collections::BTreeSet<_> =
            progs.iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names.len(), 4, "program names must be unique");
        // The suite rides alongside the paper's testbed set, not inside it.
        for p in &progs {
            assert!(!real_programs().iter().any(|r| r.name() == p.name()));
        }
    }

    #[test]
    fn allreduce_workers_share_one_commutative_accumulator() {
        let p = aggregation::allreduce();
        let sum = Field::metadata("meta.agg_sum", 4);
        for i in 0..3 {
            let w = p.table(&format!("agg_rank{i}")).unwrap();
            assert!(w.written_fields().contains(&sum));
            let folds: Vec<_> =
                w.actions().iter().flat_map(|a| a.ops()).filter_map(|op| op.fold_op()).collect();
            assert_eq!(folds, vec![crate::action::FoldOp::Add]);
        }
        // Same-kind folds everywhere: the multi-writer lint stays quiet.
        let findings = crate::lint::lint(&p);
        assert!(
            !findings
                .iter()
                .any(|l| matches!(l, crate::lint::Lint::NonCommutativeMultiWriter { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn aggregation_suite_composes_cleanly_for_serious_lints() {
        let findings = crate::lint::lint_composition(&aggregation::all());
        assert!(
            !findings.iter().any(|l| matches!(
                l,
                crate::lint::Lint::MetadataReadBeforeWrite { .. }
                    | crate::lint::Lint::TableWithoutActions { .. }
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn shared_hash_table_is_redundant_across_programs() {
        let a = ecmp_lb();
        let b = stateful_firewall();
        let ha = a.table("hash_5tuple").unwrap();
        let hb = b.table("hash_5tuple").unwrap();
        assert_eq!(ha.signature(), hb.signature());
    }

    #[test]
    fn int_produces_table1_metadata() {
        let p = int_telemetry();
        let src = p.table("int_source").unwrap();
        // 4 (switch id) + 12 (timestamps) + 6 (queue lengths) = 22 bytes.
        assert_eq!(src.written_metadata_bytes(), 22);
    }

    #[test]
    fn every_program_fits_a_generous_switch() {
        // Sanity: no single library program exceeds a 12-stage switch on its
        // own (total resource <= 12 stages).
        for p in real_programs() {
            assert!(p.total_resource() <= 12.0, "{} too large", p.name());
        }
    }

    #[test]
    fn gates_are_declared_where_expected() {
        assert_eq!(int_telemetry().gates().len(), 1);
        assert_eq!(stateful_firewall().gates().len(), 1);
        assert_eq!(qos_meter().gates().len(), 1);
        assert!(l3_router().gates().is_empty());
    }

    #[test]
    fn sketch_rows_scale_table_count() {
        // generic(name, rows): 1 shared hash + (rows-1) extra hashes + rows updates.
        let p = sketches::generic("s", 3, 0.2);
        assert_eq!(p.tables().len(), 1 + 2 + 3);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_row_sketch_panics() {
        let _ = sketches::generic("s", 0, 0.2);
    }
}
