//! Dense field interning and bitset field sets for the hot analysis path.
//!
//! Dependency typing (paper §IV) is decided entirely by intersection tests
//! over the `F^m`/`F^a` read/write sets of MAT pairs, and `A(a,b)` sizing
//! sums metadata widths over unions/intersections of those sets. With
//! [`std::collections::BTreeSet<Field>`] every test walks tree nodes and
//! compares strings; on the `O(n²)` pair loop of TDG construction that cost
//! dominates. A [`FieldTable`] interns every distinct [`Field`] once into a
//! dense `u32` id, and a [`FieldSet`] represents a field set as fixed-width
//! `u64` words so that intersection tests become word-AND loops and byte
//! sums become bit iterations over a precomputed overhead array.
//!
//! The `BTreeSet<Field>` APIs on [`Mat`](crate::mat::Mat) remain the
//! reference semantics (and the serde/export surface); [`FieldSet::to_btree`]
//! converts back for that boundary. Equivalence of the two representations
//! is asserted by the `eval_equivalence` property suite.

use crate::fields::Field;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Fixed-width word-block kernels for the `FieldSet` hot loops.
///
/// Every hot operation walks words in blocks of [`LANES`] = 4 × `u64`
/// (256 bits): a branch-free reduction decides whether the whole block
/// can be skipped before any per-word bit walk runs. The default build
/// keeps the kernels in plain Rust shaped for autovectorization (fixed
/// trip count, no data-dependent branches inside a block); enabling the
/// `simd-fieldset` feature swaps in an explicit SSE2 implementation on
/// `x86_64` (part of the architecture baseline, so no runtime dispatch
/// is needed) and falls back to the scalar kernels elsewhere.
mod kernels {
    /// Words per block: 4 × u64 = 256 bits.
    pub(super) const LANES: usize = 4;

    #[cfg(not(all(feature = "simd-fieldset", target_arch = "x86_64")))]
    mod imp {
        use super::LANES;

        /// `true` iff any bit of `a & b` is set, over one 4-word block.
        #[inline]
        pub(crate) fn and_any(a: &[u64], b: &[u64]) -> bool {
            debug_assert!(a.len() == LANES && b.len() == LANES);
            let mut acc = 0u64;
            for i in 0..LANES {
                acc |= a[i] & b[i];
            }
            acc != 0
        }

        /// `true` iff any bit of `a` is set, over one 4-word block.
        #[inline]
        pub(crate) fn or_any(a: &[u64]) -> bool {
            debug_assert!(a.len() == LANES);
            let mut acc = 0u64;
            for w in a.iter().take(LANES) {
                acc |= w;
            }
            acc != 0
        }

        /// `true` iff any bit of `a | b` is set, over one 4-word block.
        #[inline]
        pub(crate) fn or2_any(a: &[u64], b: &[u64]) -> bool {
            debug_assert!(a.len() == LANES && b.len() == LANES);
            let mut acc = 0u64;
            for i in 0..LANES {
                acc |= a[i] | b[i];
            }
            acc != 0
        }

        /// Popcount of one 4-word block.
        #[inline]
        pub(crate) fn count_ones(a: &[u64]) -> usize {
            debug_assert!(a.len() == LANES);
            let mut total = 0u32;
            for w in a.iter().take(LANES) {
                total += w.count_ones();
            }
            total as usize
        }
    }

    #[cfg(all(feature = "simd-fieldset", target_arch = "x86_64"))]
    mod imp {
        #![allow(unsafe_code)]
        //! Explicit SSE2 kernels. SSE2 is part of the `x86_64` baseline,
        //! so these intrinsics are unconditionally available — `unsafe`
        //! only because `core::arch` declares every intrinsic unsafe.
        use super::LANES;
        use core::arch::x86_64::{
            __m128i, _mm_and_si128, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_epi8,
            _mm_or_si128, _mm_setzero_si128,
        };

        /// Loads the two 128-bit halves of a 4-word block.
        ///
        /// # Safety
        /// `a` must hold at least [`LANES`] words (asserted); `loadu` has
        /// no alignment requirement.
        #[inline]
        unsafe fn load2(a: &[u64]) -> (__m128i, __m128i) {
            assert!(a.len() >= LANES);
            // SAFETY: the assert above guarantees 32 readable bytes.
            unsafe {
                (
                    _mm_loadu_si128(a.as_ptr().cast::<__m128i>()),
                    _mm_loadu_si128(a.as_ptr().add(2).cast::<__m128i>()),
                )
            }
        }

        /// `true` iff `v` has any bit set.
        #[inline]
        fn any(v: __m128i) -> bool {
            // SAFETY: SSE2 baseline; pure register ops.
            unsafe { _mm_movemask_epi8(_mm_cmpeq_epi32(v, _mm_setzero_si128())) != 0xFFFF }
        }

        /// `true` iff any bit of `a & b` is set, over one 4-word block.
        #[inline]
        pub(crate) fn and_any(a: &[u64], b: &[u64]) -> bool {
            // SAFETY: `load2` asserts block width; SSE2 is baseline.
            unsafe {
                let (a0, a1) = load2(a);
                let (b0, b1) = load2(b);
                any(_mm_or_si128(_mm_and_si128(a0, b0), _mm_and_si128(a1, b1)))
            }
        }

        /// `true` iff any bit of `a` is set, over one 4-word block.
        #[inline]
        pub(crate) fn or_any(a: &[u64]) -> bool {
            // SAFETY: `load2` asserts block width; SSE2 is baseline.
            unsafe {
                let (a0, a1) = load2(a);
                any(_mm_or_si128(a0, a1))
            }
        }

        /// `true` iff any bit of `a | b` is set, over one 4-word block.
        #[inline]
        pub(crate) fn or2_any(a: &[u64], b: &[u64]) -> bool {
            // SAFETY: `load2` asserts block width; SSE2 is baseline.
            unsafe {
                let (a0, a1) = load2(a);
                let (b0, b1) = load2(b);
                any(_mm_or_si128(_mm_or_si128(a0, b0), _mm_or_si128(a1, b1)))
            }
        }

        /// Popcount of one 4-word block (scalar `popcnt` per word beats a
        /// 128-bit emulation at this width).
        #[inline]
        pub(crate) fn count_ones(a: &[u64]) -> usize {
            assert!(a.len() >= LANES);
            let mut total = 0u32;
            for w in a.iter().take(LANES) {
                total += w.count_ones();
            }
            total as usize
        }
    }

    pub(super) use imp::{and_any, count_ones, or2_any, or_any};
}

/// Dense identifier of an interned [`Field`] within one [`FieldTable`].
///
/// Ids are only meaningful relative to the table that produced them and are
/// assigned in first-encounter order, so interning the same MATs in the
/// same order always yields the same ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FieldId(u32);

impl FieldId {
    /// The dense index of this field id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Interner mapping every distinct [`Field`] (structural identity: name,
/// kind, width) to a dense [`FieldId`], with the per-field piggyback
/// overhead cached for O(1) lookup during `A(a,b)` sizing.
#[derive(Debug, Clone, Default)]
pub struct FieldTable {
    fields: Vec<Field>,
    index: HashMap<Field, u32>,
    overhead: Vec<u32>,
}

impl FieldTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FieldTable::default()
    }

    /// Interns `field`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, field: &Field) -> FieldId {
        if let Some(&id) = self.index.get(field) {
            return FieldId(id);
        }
        let id = u32::try_from(self.fields.len()).expect("fewer than 2^32 distinct fields");
        self.fields.push(field.clone());
        self.overhead.push(field.overhead_bytes());
        self.index.insert(field.clone(), id);
        FieldId(id)
    }

    /// The id of an already-interned field, if any.
    pub fn get(&self, field: &Field) -> Option<FieldId> {
        self.index.get(field).map(|&id| FieldId(id))
    }

    /// The field behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Bytes `id`'s field adds to a packet crossing a switch boundary
    /// (its width for metadata, zero for header fields).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn overhead_bytes(&self, id: FieldId) -> u32 {
        self.overhead[id.index()]
    }

    /// Number of distinct fields interned so far.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` iff no field has been interned.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Overhead sum over the set bits of word `wi` of a set.
    #[inline]
    fn word_overhead(&self, wi: usize, mut bits: u64) -> u32 {
        let mut total = 0u32;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            total += self.overhead[wi * 64 + bit];
            bits &= bits - 1;
        }
        total
    }

    /// Sum of [`FieldTable::overhead_bytes`] over the members of `set` —
    /// the `metadata_bytes` of the reference analysis. Walks 4-word
    /// blocks, skipping all-zero blocks before any per-bit work.
    pub fn overhead_sum(&self, set: &FieldSet) -> u32 {
        let mut total = 0u32;
        let mut chunks = set.words.chunks_exact(kernels::LANES);
        let mut wi = 0usize;
        for block in &mut chunks {
            if kernels::or_any(block) {
                for (i, &w) in block.iter().enumerate() {
                    total += self.word_overhead(wi + i, w);
                }
            }
            wi += kernels::LANES;
        }
        for (i, &w) in chunks.remainder().iter().enumerate() {
            total += self.word_overhead(wi + i, w);
        }
        total
    }

    /// Overhead sum over `a ∩ b` without materializing the intersection.
    /// Blocks whose AND is all-zero are skipped by one kernel test.
    pub fn intersection_overhead(&self, a: &FieldSet, b: &FieldSet) -> u32 {
        let n = a.words.len().min(b.words.len());
        let mut ca = a.words[..n].chunks_exact(kernels::LANES);
        let mut cb = b.words[..n].chunks_exact(kernels::LANES);
        let mut total = 0u32;
        let mut wi = 0usize;
        for (ba, bb) in (&mut ca).zip(&mut cb) {
            if kernels::and_any(ba, bb) {
                for i in 0..kernels::LANES {
                    total += self.word_overhead(wi + i, ba[i] & bb[i]);
                }
            }
            wi += kernels::LANES;
        }
        for (i, (&wa, &wb)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
            total += self.word_overhead(wi + i, wa & wb);
        }
        total
    }

    /// Overhead sum over `a ∪ b` without materializing the union. The
    /// common-width prefix runs in 4-word blocks; the longer set's tail is
    /// a plain [`FieldTable::overhead_sum`]-style walk.
    pub fn union_overhead(&self, a: &FieldSet, b: &FieldSet) -> u32 {
        let long = if a.words.len() >= b.words.len() { a } else { b };
        let short = if a.words.len() >= b.words.len() { b } else { a };
        let n = short.words.len();
        let mut cl = long.words[..n].chunks_exact(kernels::LANES);
        let mut cs = short.words.chunks_exact(kernels::LANES);
        let mut total = 0u32;
        let mut wi = 0usize;
        for (bl, bs) in (&mut cl).zip(&mut cs) {
            if kernels::or2_any(bl, bs) {
                for i in 0..kernels::LANES {
                    total += self.word_overhead(wi + i, bl[i] | bs[i]);
                }
            }
            wi += kernels::LANES;
        }
        for (i, (&wl, &ws)) in cl.remainder().iter().zip(cs.remainder()).enumerate() {
            total += self.word_overhead(wi + i, wl | ws);
        }
        for (i, &wl) in long.words[n..].iter().enumerate() {
            total += self.word_overhead(n + i, wl);
        }
        total
    }
}

/// A set of interned fields as `u64` bit words.
///
/// Sets built against a growing [`FieldTable`] may have different word
/// widths; every operation treats missing high words as zero, so sets of
/// different widths compose without re-padding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldSet {
    words: Vec<u64>,
}

impl FieldSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FieldSet::default()
    }

    /// Inserts `id`, growing the word vector as needed.
    pub fn insert(&mut self, id: FieldId) {
        let word = id.index() / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (id.index() % 64);
    }

    /// `true` iff `id` is a member.
    pub fn contains(&self, id: FieldId) -> bool {
        self.words.get(id.index() / 64).is_some_and(|w| w & (1u64 << (id.index() % 64)) != 0)
    }

    /// `true` iff the sets share at least one field — the test behind
    /// every dependency-type decision, as a 4-word block kernel.
    pub fn intersects(&self, other: &FieldSet) -> bool {
        let n = self.words.len().min(other.words.len());
        let mut ca = self.words[..n].chunks_exact(kernels::LANES);
        let mut cb = other.words[..n].chunks_exact(kernels::LANES);
        for (a, b) in (&mut ca).zip(&mut cb) {
            if kernels::and_any(a, b) {
                return true;
            }
        }
        ca.remainder().iter().zip(cb.remainder()).any(|(&a, &b)| a & b != 0)
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &FieldSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of members (blockwise popcount).
    pub fn len(&self) -> usize {
        let mut chunks = self.words.chunks_exact(kernels::LANES);
        let mut total = 0usize;
        for block in &mut chunks {
            total += kernels::count_ones(block);
        }
        total + chunks.remainder().iter().map(|w| w.count_ones() as usize).sum::<usize>()
    }

    /// `true` iff no field is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some(FieldId(u32::try_from(wi * 64).expect("small table") + bit))
            })
        })
    }

    /// The thin `BTreeSet` view used at serde/export boundaries: resolves
    /// every member back to its owning [`Field`].
    ///
    /// # Panics
    ///
    /// Panics if the set holds ids foreign to `table`.
    pub fn to_btree(&self, table: &FieldTable) -> BTreeSet<Field> {
        self.iter().map(|id| table.field(id).clone()).collect()
    }
}

impl FromIterator<FieldId> for FieldSet {
    fn from_iter<I: IntoIterator<Item = FieldId>>(iter: I) -> Self {
        let mut set = FieldSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern(&meta("meta.x", 4));
        let b = t.intern(&meta("meta.x", 4));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.field(a), &meta("meta.x", 4));
    }

    #[test]
    fn structural_identity_distinguishes_widths() {
        let mut t = FieldTable::new();
        let a = t.intern(&meta("meta.x", 4));
        let b = t.intern(&meta("meta.x", 8));
        assert_ne!(a, b, "same name, different width: different field");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn header_fields_have_zero_overhead() {
        let mut t = FieldTable::new();
        let h = t.intern(&Field::header("ipv4.dst", 4));
        let m = t.intern(&meta("meta.x", 6));
        assert_eq!(t.overhead_bytes(h), 0);
        assert_eq!(t.overhead_bytes(m), 6);
    }

    #[test]
    fn set_ops_match_reference() {
        let mut t = FieldTable::new();
        // Spill across a word boundary: 70 distinct fields.
        let ids: Vec<FieldId> = (0..70).map(|i| t.intern(&meta(&format!("m{i}"), 1))).collect();
        let a: FieldSet = ids.iter().copied().step_by(2).collect();
        let b: FieldSet = ids.iter().copied().skip(1).step_by(2).collect();
        assert!(!a.intersects(&b));
        assert_eq!(a.len() + b.len(), 70);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 70);
        assert_eq!(t.overhead_sum(&u), 70);
        assert_eq!(t.union_overhead(&a, &b), 70);
        assert_eq!(t.intersection_overhead(&a, &b), 0);
        let c: FieldSet = [ids[0], ids[64], ids[69]].into_iter().collect();
        assert!(c.intersects(&a));
        assert_eq!(t.intersection_overhead(&c, &a), 2); // ids 0 and 64 are even
    }

    #[test]
    fn mismatched_widths_compose() {
        let mut t = FieldTable::new();
        let lo = t.intern(&meta("lo", 1));
        let hi = t.intern(&meta("hi65", 1));
        // Force `hi` past the first word.
        for i in 0..64 {
            t.intern(&meta(&format!("pad{i}"), 1));
        }
        let hi2 = t.intern(&meta("hi-word2", 1));
        let mut narrow = FieldSet::new();
        narrow.insert(lo);
        let mut wide = FieldSet::new();
        wide.insert(hi);
        wide.insert(hi2);
        assert!(!narrow.intersects(&wide));
        assert!(!wide.intersects(&narrow));
        assert!(!narrow.contains(hi2));
        let mut u = narrow.clone();
        u.union_with(&wide);
        assert_eq!(u.len(), 3);
        assert_eq!(t.union_overhead(&narrow, &wide), 3);
        assert_eq!(t.union_overhead(&wide, &narrow), 3);
    }

    #[test]
    fn chunked_kernels_match_bitwalk_reference() {
        // Dense-and-sparse patterns across 11 words (two full 4-word
        // blocks + remainder) against the naive per-bit reference, for
        // both the scalar and (under --features simd-fieldset) SSE2 paths.
        let mut t = FieldTable::new();
        let ids: Vec<FieldId> =
            (0..700).map(|i| t.intern(&meta(&format!("k{i}"), 1 + (i % 5)))).collect();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for trial in 0..50 {
            let a: FieldSet = ids.iter().copied().filter(|_| next() % 7 < (trial % 6)).collect();
            let b: FieldSet = ids.iter().copied().filter(|_| next() % 11 < (trial % 9)).collect();
            let inter_ref: u32 = ids
                .iter()
                .filter(|&&id| a.contains(id) && b.contains(id))
                .map(|&id| t.overhead_bytes(id))
                .sum();
            let union_ref: u32 = ids
                .iter()
                .filter(|&&id| a.contains(id) || b.contains(id))
                .map(|&id| t.overhead_bytes(id))
                .sum();
            assert_eq!(t.intersection_overhead(&a, &b), inter_ref);
            assert_eq!(t.union_overhead(&a, &b), union_ref);
            assert_eq!(t.union_overhead(&b, &a), union_ref);
            assert_eq!(t.overhead_sum(&a), t.union_overhead(&a, &a));
            assert_eq!(
                a.intersects(&b),
                inter_ref != 0 || {
                    // zero-overhead members can still intersect; recheck by id
                    ids.iter().any(|&id| a.contains(id) && b.contains(id))
                }
            );
            assert_eq!(a.len(), ids.iter().filter(|&&id| a.contains(id)).count());
        }
    }

    #[test]
    fn iteration_and_btree_view_round_trip() {
        let mut t = FieldTable::new();
        let fields = [meta("a", 2), meta("b", 3), Field::header("h", 4)];
        let set: FieldSet = fields.iter().map(|f| t.intern(f)).collect();
        let view = set.to_btree(&t);
        assert_eq!(view, fields.iter().cloned().collect::<BTreeSet<Field>>());
        assert_eq!(set.iter().count(), 3);
        assert_eq!(t.overhead_sum(&set), 5);
    }
}
