//! Dense field interning and bitset field sets for the hot analysis path.
//!
//! Dependency typing (paper §IV) is decided entirely by intersection tests
//! over the `F^m`/`F^a` read/write sets of MAT pairs, and `A(a,b)` sizing
//! sums metadata widths over unions/intersections of those sets. With
//! [`std::collections::BTreeSet<Field>`] every test walks tree nodes and
//! compares strings; on the `O(n²)` pair loop of TDG construction that cost
//! dominates. A [`FieldTable`] interns every distinct [`Field`] once into a
//! dense `u32` id, and a [`FieldSet`] represents a field set as fixed-width
//! `u64` words so that intersection tests become word-AND loops and byte
//! sums become bit iterations over a precomputed overhead array.
//!
//! The `BTreeSet<Field>` APIs on [`Mat`](crate::mat::Mat) remain the
//! reference semantics (and the serde/export surface); [`FieldSet::to_btree`]
//! converts back for that boundary. Equivalence of the two representations
//! is asserted by the `eval_equivalence` property suite.

use crate::fields::Field;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Dense identifier of an interned [`Field`] within one [`FieldTable`].
///
/// Ids are only meaningful relative to the table that produced them and are
/// assigned in first-encounter order, so interning the same MATs in the
/// same order always yields the same ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FieldId(u32);

impl FieldId {
    /// The dense index of this field id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Interner mapping every distinct [`Field`] (structural identity: name,
/// kind, width) to a dense [`FieldId`], with the per-field piggyback
/// overhead cached for O(1) lookup during `A(a,b)` sizing.
#[derive(Debug, Clone, Default)]
pub struct FieldTable {
    fields: Vec<Field>,
    index: HashMap<Field, u32>,
    overhead: Vec<u32>,
}

impl FieldTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FieldTable::default()
    }

    /// Interns `field`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, field: &Field) -> FieldId {
        if let Some(&id) = self.index.get(field) {
            return FieldId(id);
        }
        let id = u32::try_from(self.fields.len()).expect("fewer than 2^32 distinct fields");
        self.fields.push(field.clone());
        self.overhead.push(field.overhead_bytes());
        self.index.insert(field.clone(), id);
        FieldId(id)
    }

    /// The id of an already-interned field, if any.
    pub fn get(&self, field: &Field) -> Option<FieldId> {
        self.index.get(field).map(|&id| FieldId(id))
    }

    /// The field behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Bytes `id`'s field adds to a packet crossing a switch boundary
    /// (its width for metadata, zero for header fields).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn overhead_bytes(&self, id: FieldId) -> u32 {
        self.overhead[id.index()]
    }

    /// Number of distinct fields interned so far.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` iff no field has been interned.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Sum of [`FieldTable::overhead_bytes`] over the members of `set` —
    /// the `metadata_bytes` of the reference analysis as one bit walk.
    pub fn overhead_sum(&self, set: &FieldSet) -> u32 {
        set.iter().map(|id| self.overhead[id.index()]).sum()
    }

    /// Overhead sum over `a ∩ b` without materializing the intersection.
    pub fn intersection_overhead(&self, a: &FieldSet, b: &FieldSet) -> u32 {
        let mut total = 0u32;
        for (wi, (&wa, &wb)) in a.words.iter().zip(&b.words).enumerate() {
            let mut bits = wa & wb;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                total += self.overhead[wi * 64 + bit];
                bits &= bits - 1;
            }
        }
        total
    }

    /// Overhead sum over `a ∪ b` without materializing the union.
    pub fn union_overhead(&self, a: &FieldSet, b: &FieldSet) -> u32 {
        let long = if a.words.len() >= b.words.len() { a } else { b };
        let short = if a.words.len() >= b.words.len() { b } else { a };
        let mut total = 0u32;
        for (wi, &wl) in long.words.iter().enumerate() {
            let mut bits = wl | short.words.get(wi).copied().unwrap_or(0);
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                total += self.overhead[wi * 64 + bit];
                bits &= bits - 1;
            }
        }
        total
    }
}

/// A set of interned fields as `u64` bit words.
///
/// Sets built against a growing [`FieldTable`] may have different word
/// widths; every operation treats missing high words as zero, so sets of
/// different widths compose without re-padding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldSet {
    words: Vec<u64>,
}

impl FieldSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FieldSet::default()
    }

    /// Inserts `id`, growing the word vector as needed.
    pub fn insert(&mut self, id: FieldId) {
        let word = id.index() / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (id.index() % 64);
    }

    /// `true` iff `id` is a member.
    pub fn contains(&self, id: FieldId) -> bool {
        self.words.get(id.index() / 64).is_some_and(|w| w & (1u64 << (id.index() % 64)) != 0)
    }

    /// `true` iff the sets share at least one field — the word-AND loop
    /// behind every dependency-type test.
    pub fn intersects(&self, other: &FieldSet) -> bool {
        self.words.iter().zip(&other.words).any(|(&a, &b)| a & b != 0)
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &FieldSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff no field is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some(FieldId(u32::try_from(wi * 64).expect("small table") + bit))
            })
        })
    }

    /// The thin `BTreeSet` view used at serde/export boundaries: resolves
    /// every member back to its owning [`Field`].
    ///
    /// # Panics
    ///
    /// Panics if the set holds ids foreign to `table`.
    pub fn to_btree(&self, table: &FieldTable) -> BTreeSet<Field> {
        self.iter().map(|id| table.field(id).clone()).collect()
    }
}

impl FromIterator<FieldId> for FieldSet {
    fn from_iter<I: IntoIterator<Item = FieldId>>(iter: I) -> Self {
        let mut set = FieldSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern(&meta("meta.x", 4));
        let b = t.intern(&meta("meta.x", 4));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.field(a), &meta("meta.x", 4));
    }

    #[test]
    fn structural_identity_distinguishes_widths() {
        let mut t = FieldTable::new();
        let a = t.intern(&meta("meta.x", 4));
        let b = t.intern(&meta("meta.x", 8));
        assert_ne!(a, b, "same name, different width: different field");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn header_fields_have_zero_overhead() {
        let mut t = FieldTable::new();
        let h = t.intern(&Field::header("ipv4.dst", 4));
        let m = t.intern(&meta("meta.x", 6));
        assert_eq!(t.overhead_bytes(h), 0);
        assert_eq!(t.overhead_bytes(m), 6);
    }

    #[test]
    fn set_ops_match_reference() {
        let mut t = FieldTable::new();
        // Spill across a word boundary: 70 distinct fields.
        let ids: Vec<FieldId> = (0..70).map(|i| t.intern(&meta(&format!("m{i}"), 1))).collect();
        let a: FieldSet = ids.iter().copied().step_by(2).collect();
        let b: FieldSet = ids.iter().copied().skip(1).step_by(2).collect();
        assert!(!a.intersects(&b));
        assert_eq!(a.len() + b.len(), 70);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 70);
        assert_eq!(t.overhead_sum(&u), 70);
        assert_eq!(t.union_overhead(&a, &b), 70);
        assert_eq!(t.intersection_overhead(&a, &b), 0);
        let c: FieldSet = [ids[0], ids[64], ids[69]].into_iter().collect();
        assert!(c.intersects(&a));
        assert_eq!(t.intersection_overhead(&c, &a), 2); // ids 0 and 64 are even
    }

    #[test]
    fn mismatched_widths_compose() {
        let mut t = FieldTable::new();
        let lo = t.intern(&meta("lo", 1));
        let hi = t.intern(&meta("hi65", 1));
        // Force `hi` past the first word.
        for i in 0..64 {
            t.intern(&meta(&format!("pad{i}"), 1));
        }
        let hi2 = t.intern(&meta("hi-word2", 1));
        let mut narrow = FieldSet::new();
        narrow.insert(lo);
        let mut wide = FieldSet::new();
        wide.insert(hi);
        wide.insert(hi2);
        assert!(!narrow.intersects(&wide));
        assert!(!wide.intersects(&narrow));
        assert!(!narrow.contains(hi2));
        let mut u = narrow.clone();
        u.union_with(&wide);
        assert_eq!(u.len(), 3);
        assert_eq!(t.union_overhead(&narrow, &wide), 3);
        assert_eq!(t.union_overhead(&wide, &narrow), 3);
    }

    #[test]
    fn iteration_and_btree_view_round_trip() {
        let mut t = FieldTable::new();
        let fields = [meta("a", 2), meta("b", 3), Field::header("h", 4)];
        let set: FieldSet = fields.iter().map(|f| t.intern(f)).collect();
        let view = set.to_btree(&t);
        assert_eq!(view, fields.iter().cloned().collect::<BTreeSet<Field>>());
        assert_eq!(set.iter().count(), 3);
        assert_eq!(t.overhead_sum(&set), 5);
    }
}
