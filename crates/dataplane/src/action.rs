//! Actions executed by match-action tables.
//!
//! An action is a short straight-line sequence of primitive operations
//! (the ALU vocabulary of a RMT/Tofino-style pipeline). For deployment
//! purposes only two aspects matter: the set of fields the action *writes*
//! (drives dependency typing and metadata sizing) and the set it *reads*
//! (used together with match fields when estimating resource needs).

use crate::fields::Field;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The combining operator of a [`PrimitiveOp::Fold`]: a commutative,
/// associative binary operation with an identity element.
///
/// These four are exactly the operators whose algebra makes split
/// accumulation sound: partial folds computed independently (each starting
/// from the identity) can be combined in any order and any grouping and
/// still yield the value a single serialized accumulator would have
/// produced. That algebraic fact is what the state-access classification
/// pass proves and what the `RelaxedState` TDG mode exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FoldOp {
    /// `dst += f(srcs)` — identity 0.
    Add,
    /// `dst = max(dst, f(srcs))` — identity the type minimum.
    Max,
    /// `dst = min(dst, f(srcs))` — identity the type maximum.
    Min,
    /// `dst |= f(srcs)` — identity 0 (bitwise union).
    Or,
}

impl FoldOp {
    /// Stable lower-case name used by the p4dsl surface syntax
    /// (`fold_add`, `fold_max`, ...) and the state report.
    pub fn name(self) -> &'static str {
        match self {
            FoldOp::Add => "add",
            FoldOp::Max => "max",
            FoldOp::Min => "min",
            FoldOp::Or => "or",
        }
    }

    /// Op-algebra table: whether interleaved applications of `self` and
    /// `other` to one accumulator commute. Each fold kind commutes with
    /// itself (commutative + associative over its identity monoid); mixed
    /// kinds do not (`max` then `+1` differs from `+1` then `max`).
    pub fn commutes_with(self, other: FoldOp) -> bool {
        self == other
    }

    /// All fold kinds, in `Ord` order (useful for exhaustive tables).
    pub const ALL: [FoldOp; 4] = [FoldOp::Add, FoldOp::Max, FoldOp::Min, FoldOp::Or];
}

impl fmt::Display for FoldOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A primitive operation inside an action body.
///
/// The operands let callers express realistic actions; dependency analysis
/// only consumes the derived read/write sets.
///
/// New variants are appended at the end: the derived `Ord` (which drives
/// MAT signatures and merge folding) and the serde wire form of existing
/// variants must stay stable across releases.
#[allow(missing_docs)] // variant fields are self-describing operands
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PrimitiveOp {
    /// `dst = const` — write an immediate value into a field.
    SetConst { dst: Field },
    /// `dst = src` — copy one field into another.
    Copy { dst: Field, src: Field },
    /// `dst = f(srcs...)` — arithmetic/boolean combination of fields.
    Compute { dst: Field, srcs: Vec<Field> },
    /// `dst = hash(srcs...)` — hash of a set of fields (e.g. a CRC index).
    Hash { dst: Field, srcs: Vec<Field> },
    /// Read-modify-write on a stateful register array addressed by `index`,
    /// optionally exporting the old value into `out`.
    RegisterOp { index: Field, out: Option<Field> },
    /// Drop the packet. Reads/writes nothing.
    Drop,
    /// Send the packet to an output port held in `port`.
    Forward { port: Field },
    /// `dst = op(dst, f(srcs...))` — accumulate into `dst` with a
    /// commutative-associative combiner. Reads `srcs` *and* `dst` (it is a
    /// read-modify-write), writes `dst`. The declared [`FoldOp`] is the
    /// evidence the state-access pass consumes to prove the accumulator
    /// `CommutativeUpdate`.
    Fold { dst: Field, srcs: Vec<Field>, op: FoldOp },
}

impl PrimitiveOp {
    /// Fields written by this operation.
    pub fn writes(&self) -> Vec<&Field> {
        match self {
            PrimitiveOp::SetConst { dst }
            | PrimitiveOp::Copy { dst, .. }
            | PrimitiveOp::Compute { dst, .. }
            | PrimitiveOp::Hash { dst, .. } => vec![dst],
            PrimitiveOp::RegisterOp { out, .. } => out.iter().collect(),
            PrimitiveOp::Drop => Vec::new(),
            PrimitiveOp::Forward { port } => vec![port],
            PrimitiveOp::Fold { dst, .. } => vec![dst],
        }
    }

    /// Fields read by this operation.
    pub fn reads(&self) -> Vec<&Field> {
        match self {
            PrimitiveOp::SetConst { .. } | PrimitiveOp::Drop => Vec::new(),
            PrimitiveOp::Copy { src, .. } => vec![src],
            PrimitiveOp::Compute { srcs, .. } | PrimitiveOp::Hash { srcs, .. } => {
                srcs.iter().collect()
            }
            PrimitiveOp::RegisterOp { index, .. } => vec![index],
            PrimitiveOp::Forward { port } => vec![port],
            // A fold is a read-modify-write: the accumulator is read too.
            PrimitiveOp::Fold { dst, srcs, .. } => {
                srcs.iter().chain(std::iter::once(dst)).collect()
            }
        }
    }

    /// `true` for operations that touch stateful switch memory.
    pub fn is_stateful(&self) -> bool {
        matches!(self, PrimitiveOp::RegisterOp { .. })
    }

    /// The fold operator, for fold operations.
    pub fn fold_op(&self) -> Option<FoldOp> {
        match self {
            PrimitiveOp::Fold { op, .. } => Some(*op),
            _ => None,
        }
    }

    /// `true` if every write this operation performs is *idempotent*:
    /// re-executing it (or executing a replica concurrently) yields the
    /// same final value because the written value does not depend on the
    /// destination's prior contents. This is the per-op evidence behind
    /// the `ReadMostlyReplicable` verdict.
    pub fn writes_are_idempotent(&self) -> bool {
        match self {
            PrimitiveOp::Drop => true,
            PrimitiveOp::SetConst { .. } | PrimitiveOp::Copy { .. } | PrimitiveOp::Hash { .. } => {
                true
            }
            // A compute is idempotent unless it reads its own destination
            // (e.g. `ttl = ttl - 1` is not; `v = f(a, b)` is).
            PrimitiveOp::Compute { dst, srcs } => !srcs.contains(dst),
            // Register read-modify-write and the exported old value are
            // order-sensitive by definition.
            PrimitiveOp::RegisterOp { .. } => false,
            PrimitiveOp::Forward { port: _ } => true,
            // A fold reads its accumulator; never idempotent.
            PrimitiveOp::Fold { .. } => false,
        }
    }
}

/// A named action: the unit a matching rule invokes.
///
/// # Examples
///
/// ```
/// use hermes_dataplane::action::{Action, PrimitiveOp};
/// use hermes_dataplane::fields::{Field, headers};
///
/// let idx = Field::metadata("meta.idx", 4);
/// let act = Action::new("compute_index")
///     .with_op(PrimitiveOp::Hash { dst: idx.clone(), srcs: vec![headers::ipv4_src()] });
/// assert!(act.writes().contains(&idx));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Action {
    name: String,
    ops: Vec<PrimitiveOp>,
}

impl Action {
    /// Creates an empty action with the given name (a no-op until ops are
    /// added with [`Action::with_op`]).
    pub fn new(name: impl Into<String>) -> Self {
        Action { name: name.into(), ops: Vec::new() }
    }

    /// Appends a primitive operation, returning the extended action.
    #[must_use]
    pub fn with_op(mut self, op: PrimitiveOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Convenience: an action that writes each of `fields` with a computed
    /// value (one `Compute` op per field, no reads).
    pub fn writing<I>(name: impl Into<String>, fields: I) -> Self
    where
        I: IntoIterator<Item = Field>,
    {
        let mut action = Action::new(name);
        for f in fields {
            action.ops.push(PrimitiveOp::Compute { dst: f, srcs: Vec::new() });
        }
        action
    }

    /// The action's name, unique within its table.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primitive operations in execution order.
    pub fn ops(&self) -> &[PrimitiveOp] {
        &self.ops
    }

    /// The set of fields this action writes.
    pub fn writes(&self) -> BTreeSet<Field> {
        self.ops.iter().flat_map(|op| op.writes().into_iter().cloned()).collect()
    }

    /// The set of fields this action reads.
    pub fn reads(&self) -> BTreeSet<Field> {
        self.ops.iter().flat_map(|op| op.reads().into_iter().cloned()).collect()
    }

    /// Number of ALU-consuming operations (everything except `Drop`).
    pub fn alu_ops(&self) -> usize {
        self.ops.iter().filter(|op| !matches!(op, PrimitiveOp::Drop)).count()
    }

    /// `true` if any operation uses stateful register memory.
    pub fn is_stateful(&self) -> bool {
        self.ops.iter().any(PrimitiveOp::is_stateful)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ops", self.name, self.ops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::headers;

    fn idx() -> Field {
        Field::metadata("meta.idx", 4)
    }

    #[test]
    fn hash_op_reads_srcs_writes_dst() {
        let op =
            PrimitiveOp::Hash { dst: idx(), srcs: vec![headers::ipv4_src(), headers::ipv4_dst()] };
        assert_eq!(op.writes(), vec![&idx()]);
        assert_eq!(op.reads().len(), 2);
    }

    #[test]
    fn register_op_is_stateful_and_optionally_writes() {
        let without_out = PrimitiveOp::RegisterOp { index: idx(), out: None };
        assert!(without_out.is_stateful());
        assert!(without_out.writes().is_empty());

        let out = Field::metadata("meta.count", 4);
        let with_out = PrimitiveOp::RegisterOp { index: idx(), out: Some(out.clone()) };
        assert_eq!(with_out.writes(), vec![&out]);
        assert_eq!(with_out.reads(), vec![&idx()]);
    }

    #[test]
    fn action_aggregates_reads_and_writes() {
        let act = Action::new("a")
            .with_op(PrimitiveOp::Hash { dst: idx(), srcs: vec![headers::ipv4_src()] })
            .with_op(PrimitiveOp::RegisterOp { index: idx(), out: None });
        assert!(act.writes().contains(&idx()));
        assert!(act.reads().contains(&headers::ipv4_src()));
        assert!(act.reads().contains(&idx()));
        assert!(act.is_stateful());
        assert_eq!(act.alu_ops(), 2);
    }

    #[test]
    fn drop_consumes_no_alu() {
        let act = Action::new("deny").with_op(PrimitiveOp::Drop);
        assert_eq!(act.alu_ops(), 0);
        assert!(act.writes().is_empty());
        assert!(act.reads().is_empty());
    }

    #[test]
    fn fold_reads_accumulator_and_sources() {
        let acc = Field::metadata("meta.sum", 4);
        let src = headers::ipv4_src();
        let op = PrimitiveOp::Fold { dst: acc.clone(), srcs: vec![src.clone()], op: FoldOp::Add };
        assert_eq!(op.writes(), vec![&acc]);
        assert!(op.reads().contains(&&acc), "fold is a read-modify-write");
        assert!(op.reads().contains(&&src));
        assert!(!op.is_stateful());
        assert!(!op.writes_are_idempotent());
        assert_eq!(op.fold_op(), Some(FoldOp::Add));
    }

    #[test]
    fn fold_algebra_commutes_only_with_itself() {
        for a in FoldOp::ALL {
            for b in FoldOp::ALL {
                assert_eq!(a.commutes_with(b), a == b, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn idempotence_table() {
        let f = idx();
        assert!(PrimitiveOp::SetConst { dst: f.clone() }.writes_are_idempotent());
        assert!(
            PrimitiveOp::Copy { dst: f.clone(), src: headers::ipv4_src() }.writes_are_idempotent()
        );
        assert!(PrimitiveOp::Compute { dst: f.clone(), srcs: vec![headers::ipv4_src()] }
            .writes_are_idempotent());
        // Self-referential compute (ttl = ttl - 1) is not idempotent.
        assert!(
            !PrimitiveOp::Compute { dst: f.clone(), srcs: vec![f.clone()] }.writes_are_idempotent()
        );
        assert!(!PrimitiveOp::RegisterOp { index: f.clone(), out: Some(f.clone()) }
            .writes_are_idempotent());
    }

    #[test]
    fn writing_constructor_writes_all_fields() {
        let fields = [idx(), Field::metadata("meta.ts", 12)];
        let act = Action::writing("w", fields.clone());
        let w = act.writes();
        for f in &fields {
            assert!(w.contains(f));
        }
        assert!(act.reads().is_empty());
    }
}
