//! Data plane program model for the Hermes deployment framework.
//!
//! This crate models everything the Hermes optimizer needs to know about a
//! data plane program, independent of any concrete P4 dialect:
//!
//! - [`fields`] — header vs. metadata fields with byte widths (paper
//!   Table I); only metadata contributes to inter-switch byte overhead.
//! - [`fieldset`] — dense field interning ([`FieldTable`]) and `u64`-word
//!   bitset field sets ([`FieldSet`]) backing the hot analysis path.
//! - [`action`] — actions built from primitive pipeline operations with
//!   derived read/write sets.
//! - [`mat`] — match-action tables with the five properties of a TDG node
//!   (`F^m`, `A`, `F^a`, `R`, `C`) and a normalized resource requirement.
//! - [`program`] — ordered tables plus explicit successor gates.
//! - [`library`] — ten realistic programs (L3 routing, ACL, NAT, tunneling,
//!   ECMP, INT, stateful firewall, QoS, and sketches) standing in for the
//!   `switch.p4` variants of the paper's evaluation, plus ten measurement
//!   sketches for the resource-consumption experiment.
//! - [`parser`] — a P4-flavoured textual DSL front end for programs.
//! - [`synthetic`] — the seeded random program generator used by the
//!   large-scale simulations (10–20 MATs, 30 % dependency probability,
//!   10–50 % per-stage resource).
//!
//! # Quick start
//!
//! ```
//! use hermes_dataplane::library;
//!
//! let programs = library::real_programs();
//! assert_eq!(programs.len(), 10);
//! let total_tables: usize = programs.iter().map(|p| p.tables().len()).sum();
//! assert!(total_tables > 20);
//! ```

#![warn(missing_docs)]
// Unsafe is forbidden except for the cfg-gated explicit-SIMD FieldSet
// kernels (`--features simd-fieldset`), which must opt in per module and
// justify every intrinsic call against the x86_64 baseline.
#![cfg_attr(not(feature = "simd-fieldset"), forbid(unsafe_code))]
#![deny(unsafe_code)]

pub mod action;
pub mod fields;
pub mod fieldset;
pub mod library;
pub mod lint;
pub mod mat;
pub mod parser;
pub mod program;
pub mod synthetic;

pub use action::{Action, PrimitiveOp};
pub use fields::{Field, FieldKind};
pub use fieldset::{FieldId, FieldSet, FieldTable};
pub use mat::{Mat, MatBuilder, MatchKind, MatchSpec, Rule};
pub use program::{Program, ProgramBuilder};
