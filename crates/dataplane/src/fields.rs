//! Packet field model.
//!
//! A data plane program reads and writes *fields*. A field is either a
//! **header field** that already travels inside every packet (e.g. the IPv4
//! source address) or a **metadata field** that exists only inside the switch
//! pipeline (e.g. a computed hash index). When two interdependent MATs are
//! placed on *different* switches, metadata produced by the upstream MAT must
//! be piggybacked on the packet, which is exactly the per-packet byte
//! overhead Hermes minimizes. Header fields never contribute to that
//! overhead: they are already in the packet.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Whether a field lives in the packet itself or only in switch-local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FieldKind {
    /// Part of the packet headers; carried for free between switches.
    Header,
    /// Pipeline-local metadata; must be piggybacked to cross a switch
    /// boundary and therefore counts toward the per-packet byte overhead.
    Metadata,
}

impl fmt::Display for FieldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKind::Header => f.write_str("header"),
            FieldKind::Metadata => f.write_str("metadata"),
        }
    }
}

/// A named packet or metadata field with a fixed width in bytes.
///
/// Two fields are the same field iff their names are equal; the name is the
/// identity used by dependency inference, so programs that share a field name
/// genuinely share that field (e.g. every program reading `ipv4.dst`).
///
/// # Examples
///
/// ```
/// use hermes_dataplane::fields::{Field, FieldKind};
///
/// let idx = Field::metadata("cm_sketch.index", 4);
/// assert_eq!(idx.size_bytes(), 4);
/// assert!(idx.is_metadata());
/// assert_eq!(idx.overhead_bytes(), 4);
///
/// let dst = Field::header("ipv4.dst", 4);
/// assert_eq!(dst.overhead_bytes(), 0); // headers ride for free
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Field {
    name: Cow<'static, str>,
    kind: FieldKind,
    size_bytes: u32,
}

impl Field {
    /// Creates a field of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero: a zero-width field can neither be
    /// matched nor carried and always indicates a construction bug.
    pub fn new(name: impl Into<Cow<'static, str>>, kind: FieldKind, size_bytes: u32) -> Self {
        let name = name.into();
        assert!(size_bytes > 0, "field `{name}` must have a nonzero width");
        Field { name, kind, size_bytes }
    }

    /// Creates a header field (`FieldKind::Header`).
    pub fn header(name: impl Into<Cow<'static, str>>, size_bytes: u32) -> Self {
        Field::new(name, FieldKind::Header, size_bytes)
    }

    /// Creates a metadata field (`FieldKind::Metadata`).
    pub fn metadata(name: impl Into<Cow<'static, str>>, size_bytes: u32) -> Self {
        Field::new(name, FieldKind::Metadata, size_bytes)
    }

    /// The field's unique name, e.g. `"ipv4.src"` or `"meta.hash_index"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a header or metadata field.
    pub fn kind(&self) -> FieldKind {
        self.kind
    }

    /// Width of the field in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// `true` iff the field is pipeline metadata.
    pub fn is_metadata(&self) -> bool {
        self.kind == FieldKind::Metadata
    }

    /// `true` iff the field is a packet header field.
    pub fn is_header(&self) -> bool {
        self.kind == FieldKind::Header
    }

    /// Bytes this field adds to a packet when it must cross a switch
    /// boundary: its width for metadata, zero for header fields.
    pub fn overhead_bytes(&self) -> u32 {
        if self.is_metadata() {
            self.size_bytes
        } else {
            0
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {} B)", self.name, self.kind, self.size_bytes)
    }
}

/// Widely used metadata kinds and their per-switch sizes (paper Table I).
pub mod metadata {
    use super::Field;

    /// Switch identifier: 4 bytes. Used by path tracing and conformance.
    pub const SWITCH_IDENTIFIER_BYTES: u32 = 4;
    /// Queue lengths: 6 bytes. Used by congestion control.
    pub const QUEUE_LENGTHS_BYTES: u32 = 6;
    /// Timestamps: 12 bytes. Used by troubleshooting and anomaly detection.
    pub const TIMESTAMPS_BYTES: u32 = 12;
    /// Counter index: 4 bytes. Used by hash tables and sketches.
    pub const COUNTER_INDEX_BYTES: u32 = 4;

    /// A switch-identifier metadata field named `name`.
    pub fn switch_identifier(name: impl Into<std::borrow::Cow<'static, str>>) -> Field {
        Field::metadata(name, SWITCH_IDENTIFIER_BYTES)
    }

    /// A queue-lengths metadata field named `name`.
    pub fn queue_lengths(name: impl Into<std::borrow::Cow<'static, str>>) -> Field {
        Field::metadata(name, QUEUE_LENGTHS_BYTES)
    }

    /// A timestamps metadata field named `name`.
    pub fn timestamps(name: impl Into<std::borrow::Cow<'static, str>>) -> Field {
        Field::metadata(name, TIMESTAMPS_BYTES)
    }

    /// A counter-index metadata field named `name`.
    pub fn counter_index(name: impl Into<std::borrow::Cow<'static, str>>) -> Field {
        Field::metadata(name, COUNTER_INDEX_BYTES)
    }
}

/// Standard packet header fields shared by the program library.
pub mod headers {
    use super::Field;

    /// Ethernet source MAC address (6 bytes).
    pub fn eth_src() -> Field {
        Field::header("ethernet.src", 6)
    }
    /// Ethernet destination MAC address (6 bytes).
    pub fn eth_dst() -> Field {
        Field::header("ethernet.dst", 6)
    }
    /// Ethernet EtherType (2 bytes).
    pub fn eth_type() -> Field {
        Field::header("ethernet.ether_type", 2)
    }
    /// IPv4 source address (4 bytes).
    pub fn ipv4_src() -> Field {
        Field::header("ipv4.src", 4)
    }
    /// IPv4 destination address (4 bytes).
    pub fn ipv4_dst() -> Field {
        Field::header("ipv4.dst", 4)
    }
    /// IPv4 time-to-live (1 byte).
    pub fn ipv4_ttl() -> Field {
        Field::header("ipv4.ttl", 1)
    }
    /// IPv4 differentiated services code point (1 byte).
    pub fn ipv4_dscp() -> Field {
        Field::header("ipv4.dscp", 1)
    }
    /// IPv4 protocol number (1 byte).
    pub fn ipv4_proto() -> Field {
        Field::header("ipv4.proto", 1)
    }
    /// TCP/UDP source port (2 bytes).
    pub fn l4_sport() -> Field {
        Field::header("l4.sport", 2)
    }
    /// TCP/UDP destination port (2 bytes).
    pub fn l4_dport() -> Field {
        Field::header("l4.dport", 2)
    }
    /// TCP flags (1 byte).
    pub fn tcp_flags() -> Field {
        Field::header("tcp.flags", 1)
    }
    /// VLAN identifier (2 bytes).
    pub fn vlan_id() -> Field {
        Field::header("vlan.id", 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_field_has_zero_overhead() {
        let f = headers::ipv4_dst();
        assert!(f.is_header());
        assert_eq!(f.overhead_bytes(), 0);
        assert_eq!(f.size_bytes(), 4);
    }

    #[test]
    fn metadata_field_overhead_equals_size() {
        let f = Field::metadata("meta.x", 7);
        assert!(f.is_metadata());
        assert_eq!(f.overhead_bytes(), 7);
    }

    #[test]
    fn table1_sizes_match_paper() {
        assert_eq!(metadata::switch_identifier("m").size_bytes(), 4);
        assert_eq!(metadata::queue_lengths("m").size_bytes(), 6);
        assert_eq!(metadata::timestamps("m").size_bytes(), 12);
        assert_eq!(metadata::counter_index("m").size_bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero width")]
    fn zero_width_field_panics() {
        let _ = Field::header("bad", 0);
    }

    #[test]
    fn field_identity_is_structural() {
        let a = Field::metadata("meta.idx", 4);
        let b = Field::metadata("meta.idx", 4);
        assert_eq!(a, b);
        let c = Field::metadata("meta.idx2", 4);
        assert_ne!(a, c);
    }

    #[test]
    fn display_formats_name_kind_size() {
        let f = Field::metadata("meta.idx", 4);
        assert_eq!(f.to_string(), "meta.idx (metadata, 4 B)");
    }

    #[test]
    fn serde_round_trip() {
        let f = Field::metadata("meta.idx", 4);
        let json = serde_json::to_string(&f).unwrap();
        let back: Field = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
