//! SPEED-style TDG merging (paper §IV, Algorithm 1 lines 4–8).
//!
//! Different programs exhibit redundancy — the canonical example is every
//! measurement sketch invoking the same 5-tuple hash. Merging unions the
//! node and edge sets of two TDGs and then removes as many *redundant* MATs
//! (structurally identical per [`Mat::signature`](hermes_dataplane::Mat::signature))
//! as possible while (a) preserving every dependency edge and (b) never
//! introducing a cycle. A merge candidate that would create a cycle is
//! skipped, exactly the "remove as many ... while preserving the edges"
//! behaviour the paper describes.

use crate::analysis::{classify, metadata_amount};
use crate::graph::{NodeId, Tdg, TdgEdge, TdgNode};
use std::collections::{BTreeMap, BTreeSet};

/// Merges all TDGs into one (the `TDG_MERGING` loop of Algorithm 1).
///
/// Returns an empty TDG when `tdgs` is empty. The analysis mode of the
/// first graph is used for the result; callers mixing modes should
/// [`Tdg::reanalyze`] afterwards.
pub fn merge_all(tdgs: Vec<Tdg>) -> Tdg {
    let mut iter = tdgs.into_iter();
    let Some(mut merged) = iter.next() else {
        return Tdg::new(crate::analysis::AnalysisMode::PaperLiteral);
    };
    for next in iter {
        merged = merge_pair(merged, next);
    }
    merged
}

/// Merges two TDGs, eliminating redundant MATs across them.
///
/// Relaxed edges are restored to their conservative base types before
/// merging and the relaxation pass reruns on the merged result: a field's
/// verdict is a property of the *final* node set (merging can add writers
/// and demote it), so per-input relaxations must not survive as-is.
pub fn merge_pair(mut t1: Tdg, mut t2: Tdg) -> Tdg {
    let mode = t1.mode();
    if mode.relaxes_state() {
        t1.restore_base_edges();
        t2.restore_base_edges();
    }
    let offset = t1.node_count();

    let mut nodes: Vec<TdgNode> = t1.nodes().to_vec();
    nodes.extend(t2.nodes().iter().cloned());
    let mut edges: Vec<TdgEdge> = t1.edges().to_vec();
    edges.extend(t2.edges().iter().map(|e| TdgEdge {
        from: NodeId(e.from.index() + offset),
        to: NodeId(e.to.index() + offset),
        ..*e
    }));

    // Group nodes by structural signature; node order keeps determinism.
    let mut groups: BTreeMap<_, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        groups.entry(n.mat.signature()).or_default().push(i);
    }

    // rep[i] = the surviving node index i is folded into (itself initially).
    let mut rep: Vec<usize> = (0..nodes.len()).collect();
    for group in groups.values() {
        let head = group[0];
        for &dup in &group[1..] {
            rep[dup] = head;
            if has_cycle(nodes.len(), &edges, &rep) {
                rep[dup] = dup; // undo: this elimination would break the DAG
            }
        }
    }

    // Compact surviving nodes and merge provenance of folded duplicates.
    let mut new_index = vec![usize::MAX; nodes.len()];
    let mut out_nodes: Vec<TdgNode> = Vec::new();
    for i in 0..nodes.len() {
        if rep[i] == i {
            new_index[i] = out_nodes.len();
            out_nodes.push(nodes[i].clone());
        }
    }
    for i in 0..nodes.len() {
        if rep[i] != i {
            let programs = nodes[i].programs.clone();
            out_nodes[new_index[rep[i]]].programs.extend(programs);
        }
    }

    // Remap edges, drop self-loops, and deduplicate parallel edges keeping
    // the largest metadata amount (endpoint signatures are equal, so the
    // dependency types of folded parallels agree).
    let mut dedup: BTreeMap<(usize, usize), TdgEdge> = BTreeMap::new();
    for e in &edges {
        let from = new_index[rep[e.from.index()]];
        let to = new_index[rep[e.to.index()]];
        if from == to {
            continue;
        }
        let remapped = TdgEdge { from: NodeId(from), to: NodeId(to), ..*e };
        dedup
            .entry((from, to))
            .and_modify(|existing| {
                if remapped.bytes > existing.bytes {
                    *existing = remapped;
                }
            })
            .or_insert(remapped);
    }

    // Cross-program dependencies: merging composes the programs
    // sequentially (`t1` upstream of `t2`), so two MATs touching the same
    // fields across the program boundary are as interdependent as within
    // one program — e.g. one program's counter table feeding another
    // program's policer through a shared metadata field. Shared
    // (deduplicated) nodes already carry both sides' edges, so inference
    // runs only between t1-only and t2-only survivors; an edge that would
    // close a cycle through a shared node is skipped, mirroring the
    // fold-skipping rule above.
    let shared: BTreeSet<usize> =
        (offset..nodes.len()).filter(|&i| rep[i] < offset).map(|i| new_index[rep[i]]).collect();
    let mut out_edges: Vec<TdgEdge> = dedup.into_values().collect();
    for i in 0..offset {
        if rep[i] != i || shared.contains(&new_index[i]) {
            continue;
        }
        for j in offset..nodes.len() {
            if rep[j] != j {
                continue;
            }
            let (from, to) = (new_index[i], new_index[j]);
            if out_edges.iter().any(|e| e.from.index() == from && e.to.index() == to) {
                continue;
            }
            let (a, b) = (&nodes[i].mat, &nodes[j].mat);
            if let Some(dep) = classify(a, b, false) {
                let bytes = metadata_amount(a, b, dep, mode);
                let edge = TdgEdge { from: NodeId(from), to: NodeId(to), dep, bytes };
                out_edges.push(edge);
                if !is_acyclic(out_nodes.len(), &out_edges) {
                    out_edges.pop();
                }
            }
        }
    }

    let mut merged = Tdg::from_parts(out_nodes, out_edges, mode);
    debug_assert!(merged.is_dag(), "merge must preserve acyclicity");
    if mode.relaxes_state() {
        merged.relax_edges();
    }
    merged
}

/// Plain Kahn acyclicity check on dense node indexes.
fn is_acyclic(n: usize, edges: &[TdgEdge]) -> bool {
    let mut indegree = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.from.index()].push(e.to.index());
        indegree[e.to.index()] += 1;
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = stack.pop() {
        seen += 1;
        for &v in &adj[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                stack.push(v);
            }
        }
    }
    seen == n
}

/// Cycle check on the graph obtained by contracting every node into its
/// representative. O(V + E) Kahn.
fn has_cycle(n: usize, edges: &[TdgEdge], rep: &[usize]) -> bool {
    let mut indegree = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut m = 0usize;
    for e in edges {
        let (f, t) = (rep[e.from.index()], rep[e.to.index()]);
        if f != t {
            adj[f].push(t);
            indegree[t] += 1;
            m += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| rep[i] == i && indegree[i] == 0).collect();
    let mut seen = 0usize;
    let mut removed_edges = 0usize;
    while let Some(u) = stack.pop() {
        seen += 1;
        for &v in &adj[u] {
            removed_edges += 1;
            indegree[v] -= 1;
            if indegree[v] == 0 {
                stack.push(v);
            }
        }
    }
    let live_nodes = (0..n).filter(|&i| rep[i] == i).count();
    seen < live_nodes || removed_edges < m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{AnalysisMode, DependencyType};
    use crate::graph::Tdg;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::library;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;

    fn tdg(p: &Program) -> Tdg {
        Tdg::from_program(p, AnalysisMode::PaperLiteral)
    }

    #[test]
    fn merge_eliminates_shared_hash() {
        let a = tdg(&library::ecmp_lb());
        let b = tdg(&library::stateful_firewall());
        let before = a.node_count() + b.node_count();
        let merged = merge_pair(a, b);
        assert_eq!(merged.node_count(), before - 1, "one redundant hash removed");
        assert!(merged.is_dag());
        // The shared node now serves both programs.
        let hash =
            merged.nodes().iter().find(|n| n.name.ends_with("hash_5tuple")).expect("hash survives");
        assert!(hash.programs.contains("ecmp_lb"));
        assert!(hash.programs.contains("stateful_firewall"));
    }

    #[test]
    fn merge_all_sketches_shares_one_hash() {
        let tdgs: Vec<Tdg> = library::sketches::all().iter().map(tdg).collect();
        let total: usize = tdgs.iter().map(Tdg::node_count).sum();
        let merged = merge_all(tdgs);
        // Ten identical hash tables collapse to one: 9 nodes saved.
        assert_eq!(merged.node_count(), total - 9);
        assert!(merged.is_dag());
    }

    #[test]
    fn merge_without_redundancy_is_disjoint_union() {
        let a = tdg(&library::l3_router());
        let b = tdg(&library::acl());
        let (na, ea) = (a.node_count(), a.edge_count());
        let (nb, eb) = (b.node_count(), b.edge_count());
        let merged = merge_pair(a, b);
        assert_eq!(merged.node_count(), na + nb);
        assert_eq!(merged.edge_count(), ea + eb);
    }

    #[test]
    fn merge_preserves_edges_of_folded_nodes() {
        let a = tdg(&library::ecmp_lb());
        let b = tdg(&library::stateful_firewall());
        let merged = merge_pair(a, b);
        let hash = merged.node_by_name("ecmp_lb/hash_5tuple").expect("kept first name");
        // Hash must still feed both the ECMP group and the firewall state.
        let downstream: Vec<&str> =
            merged.out_edges(hash).map(|e| merged.node(e.to).name.as_str()).collect();
        assert!(downstream.iter().any(|n| n.ends_with("ecmp_group")));
        assert!(downstream.iter().any(|n| n.ends_with("conn_state")));
    }

    #[test]
    fn cycle_inducing_merge_is_skipped() {
        // P1: x -> y ; P2: y' -> x' with x ≡ x' and y ≡ y'. Folding both
        // pairs would create x -> y -> x; the merge must keep >= 3 nodes.
        let f = Field::metadata("meta.f", 4);
        let g = Field::metadata("meta.g", 4);
        let x = Mat::builder("x")
            .match_field(g.clone(), MatchKind::Exact)
            .action(Action::writing("w", [f.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let y = Mat::builder("y")
            .match_field(f, MatchKind::Exact)
            .action(Action::writing("w", [g]))
            .resource(0.1)
            .build()
            .unwrap();
        let p1 = Program::builder("p1").table(x.clone()).table(y.clone()).build().unwrap();
        let p2 = Program::builder("p2").table(y).table(x).build().unwrap();
        let merged = merge_pair(tdg(&p1), tdg(&p2));
        assert!(merged.is_dag());
        assert!(merged.node_count() >= 3, "folding both pairs would cycle");
    }

    #[test]
    fn parallel_edges_deduplicated_keeping_max_bytes() {
        // Two identical programs fold completely onto each other.
        let p = library::cm_sketch();
        let merged = merge_pair(tdg(&p), tdg(&p));
        let single = tdg(&p);
        assert_eq!(merged.node_count(), single.node_count());
        assert_eq!(merged.edge_count(), single.edge_count());
        for (a, b) in merged.edges().iter().zip(single.edges()) {
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn cross_program_dependency_inferred() {
        // Program A writes meta.count; program B matches it. Merging must
        // produce a dependency edge carrying the 4-byte field.
        let count = Field::metadata("meta.count", 4);
        let writer = Mat::builder("w")
            .action(Action::writing("bump", [count.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let reader = Mat::builder("r")
            .match_field(count, MatchKind::Exact)
            .action(Action::new("noop"))
            .resource(0.1)
            .build()
            .unwrap();
        let pa = Program::builder("a").table(writer).build().unwrap();
        let pb = Program::builder("b").table(reader).build().unwrap();
        let merged = merge_pair(tdg(&pa), tdg(&pb));
        assert_eq!(merged.edge_count(), 1);
        let e = merged.edges()[0];
        assert_eq!(e.dep, DependencyType::Match);
        assert_eq!(e.bytes, 4);
        assert_eq!(merged.node(e.from).name, "a/w");
        assert_eq!(merged.node(e.to).name, "b/r");
    }

    #[test]
    fn cross_program_inference_skips_shared_nodes() {
        // Shared hash: the only edges from it should be the remapped
        // intra-program ones, not duplicated cross inferences.
        let a = tdg(&library::ecmp_lb());
        let b = tdg(&library::stateful_firewall());
        let merged = merge_pair(a, b);
        let hash = merged.node_by_name("ecmp_lb/hash_5tuple").unwrap();
        let to_conn = merged
            .out_edges(hash)
            .filter(|e| merged.node(e.to).name.ends_with("conn_state"))
            .count();
        assert_eq!(to_conn, 1, "exactly one edge to the firewall consumer");
    }

    #[test]
    fn merging_a_conflicting_writer_demotes_relaxations() {
        // Program A: two same-kind folders — their edge relaxes.
        let acc = Field::metadata("meta.acc", 4);
        let src = Field::header("pkt.v", 4);
        // Distinct capacities keep the folders structurally different, so
        // signature folding leaves both nodes (and their edge) in place.
        let folder = |name: &str, cap: usize| {
            Mat::builder(name.to_owned())
                .action(Action::new("f").with_op(hermes_dataplane::action::PrimitiveOp::Fold {
                    dst: acc.clone(),
                    srcs: vec![src.clone()],
                    op: hermes_dataplane::action::FoldOp::Add,
                }))
                .capacity(cap)
                .resource(0.1)
                .build()
                .unwrap()
        };
        let pa =
            Program::builder("a").table(folder("f1", 8)).table(folder("f2", 16)).build().unwrap();
        let ta = Tdg::from_program(&pa, AnalysisMode::RelaxedState);
        assert!(ta.edges().iter().all(|e| e.dep.is_relaxed() && e.bytes == 0));

        // Program B: a plain overwriter of the same accumulator. Merged,
        // the field is no longer all-folds: every relaxation must vanish.
        let setter = Mat::builder("s")
            .action(Action::writing("w", [acc.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let pb = Program::builder("b").table(setter).build().unwrap();
        let tb = Tdg::from_program(&pb, AnalysisMode::RelaxedState);
        let merged = merge_pair(ta, tb);
        assert!(
            merged.edges().iter().all(|e| !e.dep.is_relaxed()),
            "demoted verdict must un-relax: {:?}",
            merged.edges()
        );
        // And the restored folder edge carries its conservative bytes again.
        let f1 = merged.node_by_name("a/f1").unwrap();
        let f2 = merged.node_by_name("a/f2").unwrap();
        let e = merged.edges().iter().find(|e| e.from == f1 && e.to == f2).unwrap();
        assert_eq!(e.dep, DependencyType::Match);
        assert_eq!(e.bytes, 4);
    }

    #[test]
    fn merge_all_of_nothing_is_empty() {
        let merged = merge_all(Vec::new());
        assert_eq!(merged.node_count(), 0);
    }

    #[test]
    fn merge_all_real_programs_is_dag_and_smaller() {
        let tdgs: Vec<Tdg> = library::real_programs().iter().map(tdg).collect();
        let total: usize = tdgs.iter().map(Tdg::node_count).sum();
        let merged = merge_all(tdgs);
        assert!(merged.is_dag());
        assert!(merged.node_count() < total, "library shares the 5-tuple hash");
        // Edge types survive the merge.
        assert!(merged.edges().iter().any(|e| e.dep == DependencyType::Match));
    }
}
