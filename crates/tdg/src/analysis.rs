//! Dependency typing and metadata-size analysis (paper §IV, Algorithm 1).
//!
//! Given two MATs `a` (upstream in program order) and `b` (downstream), the
//! dependency type is decided from their field read/write sets:
//!
//! | Type | Condition | Metadata `A(a,b)` |
//! |---|---|---|
//! | Match (𝕄) | `F^a_a ∩ F^m_b ≠ ∅` | metadata in `F^a_a` |
//! | Action (𝔸) | `F^a_a ∩ F^a_b ≠ ∅` | metadata in `F^a_a ∪ F^a_b` |
//! | Reverse match (ℝ) | `F^m_a ∩ F^a_b ≠ ∅` | 0 (ordering only) |
//! | Successor (𝕊) | explicit control gate | metadata in `F^a_a` |
//!
//! Precedence follows Jose et al. \[8\]: 𝕄 > 𝔸 > 𝕊 > ℝ (a pair that
//! qualifies for several types gets the strongest).
//!
//! The paper's Algorithm 1 sums the sizes of *all* metadata fields in the
//! relevant set ([`AnalysisMode::PaperLiteral`]). A tighter variant only
//! counts metadata actually consumed by the downstream MAT
//! ([`AnalysisMode::Intersection`]); it is exposed for ablation studies.

use hermes_dataplane::fields::Field;
use hermes_dataplane::fieldset::{FieldSet, FieldTable};
use hermes_dataplane::Mat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The four MAT dependency types of the paper, plus their *relaxed*
/// shadows produced by the state-access classification pass.
///
/// A relaxed edge records that the base dependency exists but that every
/// field justifying it was proven relaxable (`ReadMostlyReplicable` or
/// `CommutativeUpdate`): the edge carries zero metadata bytes and imposes
/// neither a stage ordering nor an inter-switch route. Relaxed variants
/// are appended after the paper's four so the derived `Ord` and the serde
/// wire form of existing graphs stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DependencyType {
    /// 𝕄 — downstream matches a field the upstream modifies.
    Match,
    /// 𝔸 — both MATs modify a common field.
    Action,
    /// ℝ — downstream modifies a field the upstream matches; pure ordering.
    ReverseMatch,
    /// 𝕊 — upstream's result gates whether downstream executes.
    Successor,
    /// 𝕄 whose justifying fields are all proven relaxable.
    RelaxedMatch,
    /// 𝔸 whose shared written fields are all proven `CommutativeUpdate`.
    RelaxedAction,
    /// ℝ whose justifying fields are all proven relaxable.
    RelaxedReverse,
}

impl DependencyType {
    /// The paper dependency type this edge relaxes; identity for the four
    /// base types.
    pub fn base(self) -> DependencyType {
        match self {
            DependencyType::RelaxedMatch => DependencyType::Match,
            DependencyType::RelaxedAction => DependencyType::Action,
            DependencyType::RelaxedReverse => DependencyType::ReverseMatch,
            other => other,
        }
    }

    /// `true` for the relaxed shadow variants.
    pub fn is_relaxed(self) -> bool {
        matches!(
            self,
            DependencyType::RelaxedMatch
                | DependencyType::RelaxedAction
                | DependencyType::RelaxedReverse
        )
    }

    /// Whether a same-switch placement of the endpoints must put the
    /// upstream MAT in a strictly earlier stage. Relaxed edges waive this.
    pub fn requires_order(self) -> bool {
        !self.is_relaxed()
    }

    /// Whether a split placement of the endpoints needs an inter-switch
    /// route for the dependency's metadata. Relaxed edges waive this.
    pub fn requires_route(self) -> bool {
        !self.is_relaxed()
    }
}

impl fmt::Display for DependencyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DependencyType::Match => "match",
            DependencyType::Action => "action",
            DependencyType::ReverseMatch => "reverse-match",
            DependencyType::Successor => "successor",
            DependencyType::RelaxedMatch => "relaxed-match",
            DependencyType::RelaxedAction => "relaxed-action",
            DependencyType::RelaxedReverse => "relaxed-reverse-match",
        };
        f.write_str(s)
    }
}

/// How `A(a,b)` counts metadata fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalysisMode {
    /// Algorithm 1 as printed: every metadata field in the relevant
    /// write-set counts, whether or not the downstream MAT consumes it.
    #[default]
    PaperLiteral,
    /// Only metadata the downstream MAT actually reads/matches counts.
    /// Tighter; used by the ablation benchmarks.
    Intersection,
    /// [`PaperLiteral`](AnalysisMode::PaperLiteral) byte counting plus the
    /// state-access relaxation pass: after inference, edges whose only
    /// justification is a field proven `ReadMostlyReplicable` or
    /// `CommutativeUpdate` are downgraded to their relaxed shadow type and
    /// carry zero bytes. Opt-in; the default mode never relaxes.
    RelaxedState,
}

impl AnalysisMode {
    /// The byte-counting discipline of this mode: `RelaxedState` counts
    /// un-relaxed edges exactly like `PaperLiteral`.
    pub fn byte_mode(self) -> AnalysisMode {
        match self {
            AnalysisMode::Intersection => AnalysisMode::Intersection,
            AnalysisMode::PaperLiteral | AnalysisMode::RelaxedState => AnalysisMode::PaperLiteral,
        }
    }

    /// `true` when this mode runs the state-access relaxation pass.
    pub fn relaxes_state(self) -> bool {
        matches!(self, AnalysisMode::RelaxedState)
    }
}

/// Infers the dependency type between `a` (upstream) and `b` (downstream),
/// or `None` when the pair is independent.
///
/// `gated` reports whether the enclosing program declares a successor gate
/// `a -> b`; gates cannot be derived from field sets.
pub fn classify(a: &Mat, b: &Mat, gated: bool) -> Option<DependencyType> {
    let wa = a.written_fields();
    // Downstream *consumes* a field either by matching on it or by reading
    // it inside an action body (e.g. a register index). Both are data
    // dependencies in the Jose et al. sense, so both type as Match.
    let mut mb = b.match_fields();
    mb.extend(b.action_read_fields());
    if wa.iter().any(|f| mb.contains(f)) {
        return Some(DependencyType::Match);
    }
    let wb = b.written_fields();
    if wa.iter().any(|f| wb.contains(f)) {
        return Some(DependencyType::Action);
    }
    if gated {
        return Some(DependencyType::Successor);
    }
    let ma = a.match_fields();
    if wb.iter().any(|f| ma.contains(f)) {
        return Some(DependencyType::ReverseMatch);
    }
    None
}

fn metadata_bytes(fields: impl IntoIterator<Item = Field>) -> u32 {
    fields.into_iter().filter(Field::is_metadata).map(|f| f.size_bytes()).sum()
}

/// Computes `A(a,b)` — the bytes of metadata that must ride on every packet
/// if `a` and `b` end up on different switches — for an edge of the given
/// type (Algorithm 1, lines 10–18).
pub fn metadata_amount(a: &Mat, b: &Mat, dep: DependencyType, mode: AnalysisMode) -> u32 {
    // Relaxed edges never carry metadata: that is their entire point.
    if dep.is_relaxed() {
        return 0;
    }
    let wa = a.written_fields();
    match (dep, mode.byte_mode()) {
        (DependencyType::ReverseMatch, _) => 0,
        (DependencyType::Match, AnalysisMode::PaperLiteral)
        | (DependencyType::Successor, AnalysisMode::PaperLiteral) => metadata_bytes(wa),
        (DependencyType::Match, AnalysisMode::Intersection) => {
            let mut mb = b.match_fields();
            mb.extend(b.action_read_fields());
            metadata_bytes(wa.into_iter().filter(|f| mb.contains(f)))
        }
        (DependencyType::Successor, AnalysisMode::Intersection) => {
            // The gate outcome must travel; approximate it by the metadata
            // the downstream table consumes, falling back to 1 byte.
            let consumed: BTreeSet<Field> =
                b.match_fields().union(&b.action_read_fields()).cloned().collect();
            let bytes = metadata_bytes(wa.into_iter().filter(|f| consumed.contains(f)));
            bytes.max(1)
        }
        (DependencyType::Action, AnalysisMode::PaperLiteral) => {
            let union: BTreeSet<Field> = wa.union(&b.written_fields()).cloned().collect();
            metadata_bytes(union)
        }
        (DependencyType::Action, AnalysisMode::Intersection) => {
            let wb = b.written_fields();
            metadata_bytes(wa.into_iter().filter(|f| wb.contains(f)))
        }
        // Relaxed deps returned early; `byte_mode` never yields RelaxedState.
        _ => unreachable!("normalized above"),
    }
}

/// A MAT's field sets interned against a shared [`FieldTable`] — the
/// hot-path mirror of the `BTreeSet` accessors on [`Mat`].
///
/// Built once per node before the `O(n²)` pair loop of TDG construction;
/// [`classify_profiles`] and [`metadata_amount_profiles`] then decide every
/// pair with word-AND/OR loops instead of tree walks. The reference
/// implementations ([`classify`] / [`metadata_amount`]) are kept unchanged
/// and the `eval_equivalence` property suite pins the two paths together.
#[derive(Debug, Clone)]
pub struct MatProfile {
    /// `F^m` — fields the MAT matches on.
    pub matched: FieldSet,
    /// `F^a` — fields the MAT's actions write.
    pub written: FieldSet,
    /// `F^m ∪ action-read fields` — everything the MAT consumes; the
    /// downstream side of a 𝕄 dependency test.
    pub consumed: FieldSet,
    /// Cached `metadata_bytes(written)` — the PaperLiteral 𝕄/𝕊 amount.
    pub written_overhead: u32,
}

impl MatProfile {
    /// Interns `mat`'s field sets into `table` and builds its profile.
    pub fn build(mat: &Mat, table: &mut FieldTable) -> Self {
        let mut matched = FieldSet::new();
        for spec in mat.match_specs() {
            matched.insert(table.intern(&spec.field));
        }
        let mut written = FieldSet::new();
        let mut consumed = matched.clone();
        for action in mat.actions() {
            for f in action.writes() {
                written.insert(table.intern(&f));
            }
            for f in action.reads() {
                consumed.insert(table.intern(&f));
            }
        }
        let written_overhead = table.overhead_sum(&written);
        MatProfile { matched, written, consumed, written_overhead }
    }
}

/// Interned-profile twin of [`classify`]: same precedence (𝕄 > 𝔸 > 𝕊 > ℝ),
/// decided with bitset intersection tests.
pub fn classify_profiles(a: &MatProfile, b: &MatProfile, gated: bool) -> Option<DependencyType> {
    if a.written.intersects(&b.consumed) {
        return Some(DependencyType::Match);
    }
    if a.written.intersects(&b.written) {
        return Some(DependencyType::Action);
    }
    if gated {
        return Some(DependencyType::Successor);
    }
    if a.matched.intersects(&b.written) {
        return Some(DependencyType::ReverseMatch);
    }
    None
}

/// Interned-profile twin of [`metadata_amount`]: computes `A(a,b)` with
/// overhead sums over word-AND/OR loops, no set materialization.
pub fn metadata_amount_profiles(
    table: &FieldTable,
    a: &MatProfile,
    b: &MatProfile,
    dep: DependencyType,
    mode: AnalysisMode,
) -> u32 {
    if dep.is_relaxed() {
        return 0;
    }
    match (dep, mode.byte_mode()) {
        (DependencyType::ReverseMatch, _) => 0,
        (DependencyType::Match, AnalysisMode::PaperLiteral)
        | (DependencyType::Successor, AnalysisMode::PaperLiteral) => a.written_overhead,
        (DependencyType::Match, AnalysisMode::Intersection) => {
            table.intersection_overhead(&a.written, &b.consumed)
        }
        (DependencyType::Successor, AnalysisMode::Intersection) => {
            table.intersection_overhead(&a.written, &b.consumed).max(1)
        }
        (DependencyType::Action, AnalysisMode::PaperLiteral) => {
            table.union_overhead(&a.written, &b.written)
        }
        (DependencyType::Action, AnalysisMode::Intersection) => {
            table.intersection_overhead(&a.written, &b.written)
        }
        // Relaxed deps returned early; `byte_mode` never yields RelaxedState.
        _ => unreachable!("normalized above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::headers;
    use hermes_dataplane::mat::MatchKind;

    fn writer(name: &str, fields: &[Field]) -> Mat {
        Mat::builder(name.to_owned())
            .action(Action::writing("w", fields.iter().cloned()))
            .resource(0.1)
            .build()
            .unwrap()
    }

    fn matcher(name: &str, fields: &[Field]) -> Mat {
        let mut b = Mat::builder(name.to_owned()).action(Action::new("noop")).resource(0.1);
        for f in fields {
            b = b.match_field(f.clone(), MatchKind::Exact);
        }
        b.build().unwrap()
    }

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    #[test]
    fn match_dependency_detected() {
        let f = meta("meta.x", 4);
        let a = writer("a", std::slice::from_ref(&f));
        let b = matcher("b", &[f]);
        assert_eq!(classify(&a, &b, false), Some(DependencyType::Match));
    }

    #[test]
    fn action_dependency_detected() {
        let f = meta("meta.x", 4);
        let a = writer("a", std::slice::from_ref(&f));
        let b = writer("b", &[f]);
        assert_eq!(classify(&a, &b, false), Some(DependencyType::Action));
    }

    #[test]
    fn reverse_match_detected() {
        let f = meta("meta.x", 4);
        let a = matcher("a", std::slice::from_ref(&f));
        let b = writer("b", &[f]);
        assert_eq!(classify(&a, &b, false), Some(DependencyType::ReverseMatch));
    }

    #[test]
    fn successor_requires_gate() {
        let a = writer("a", &[meta("meta.x", 4)]);
        let b = matcher("b", &[meta("meta.y", 2)]);
        assert_eq!(classify(&a, &b, false), None);
        assert_eq!(classify(&a, &b, true), Some(DependencyType::Successor));
    }

    #[test]
    fn match_takes_precedence_over_action_and_gate() {
        let f = meta("meta.x", 4);
        let a = writer("a", std::slice::from_ref(&f));
        let b = Mat::builder("b")
            .match_field(f.clone(), MatchKind::Exact)
            .action(Action::writing("w", [f]))
            .resource(0.1)
            .build()
            .unwrap();
        assert_eq!(classify(&a, &b, true), Some(DependencyType::Match));
    }

    #[test]
    fn paper_literal_match_counts_all_written_metadata() {
        let shared = meta("meta.x", 4);
        let extra = meta("meta.z", 12);
        let a = writer("a", &[shared.clone(), extra]);
        let b = matcher("b", &[shared]);
        assert_eq!(metadata_amount(&a, &b, DependencyType::Match, AnalysisMode::PaperLiteral), 16);
    }

    #[test]
    fn intersection_match_counts_only_consumed_metadata() {
        let shared = meta("meta.x", 4);
        let extra = meta("meta.z", 12);
        let a = writer("a", &[shared.clone(), extra]);
        let b = matcher("b", &[shared]);
        assert_eq!(metadata_amount(&a, &b, DependencyType::Match, AnalysisMode::Intersection), 4);
    }

    #[test]
    fn header_fields_never_count() {
        let a = writer("a", &[headers::ipv4_ttl()]);
        let b = matcher("b", &[headers::ipv4_ttl()]);
        assert_eq!(classify(&a, &b, false), Some(DependencyType::Match));
        assert_eq!(metadata_amount(&a, &b, DependencyType::Match, AnalysisMode::PaperLiteral), 0);
    }

    #[test]
    fn reverse_match_carries_no_metadata() {
        let f = meta("meta.x", 4);
        let a = matcher("a", std::slice::from_ref(&f));
        let b = writer("b", &[f]);
        for mode in [AnalysisMode::PaperLiteral, AnalysisMode::Intersection] {
            assert_eq!(metadata_amount(&a, &b, DependencyType::ReverseMatch, mode), 0);
        }
    }

    #[test]
    fn action_dependency_unions_write_sets_in_paper_mode() {
        let f = meta("meta.x", 4);
        let g = meta("meta.g", 6);
        let a = writer("a", std::slice::from_ref(&f));
        let b = writer("b", &[f.clone(), g]);
        assert_eq!(metadata_amount(&a, &b, DependencyType::Action, AnalysisMode::PaperLiteral), 10);
        assert_eq!(metadata_amount(&a, &b, DependencyType::Action, AnalysisMode::Intersection), 4);
    }

    #[test]
    fn profiles_agree_with_reference_on_all_pairs() {
        let f = meta("meta.x", 4);
        let g = meta("meta.g", 6);
        let mats = [
            writer("w-f", std::slice::from_ref(&f)),
            writer("w-fg", &[f.clone(), g.clone()]),
            matcher("m-f", std::slice::from_ref(&f)),
            matcher("m-g", std::slice::from_ref(&g)),
            writer("w-hdr", &[headers::ipv4_ttl()]),
        ];
        let mut table = FieldTable::new();
        let profiles: Vec<MatProfile> =
            mats.iter().map(|m| MatProfile::build(m, &mut table)).collect();
        for (i, a) in mats.iter().enumerate() {
            for (j, b) in mats.iter().enumerate() {
                for gated in [false, true] {
                    let reference = classify(a, b, gated);
                    let interned = classify_profiles(&profiles[i], &profiles[j], gated);
                    assert_eq!(interned, reference, "classify {i}->{j} gated={gated}");
                    if let Some(dep) = reference {
                        for mode in [AnalysisMode::PaperLiteral, AnalysisMode::Intersection] {
                            assert_eq!(
                                metadata_amount_profiles(
                                    &table,
                                    &profiles[i],
                                    &profiles[j],
                                    dep,
                                    mode
                                ),
                                metadata_amount(a, b, dep, mode),
                                "amount {i}->{j} {dep:?} {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn successor_intersection_has_floor_of_one_byte() {
        let a = writer("a", &[meta("meta.x", 4)]);
        let b = matcher("b", &[meta("meta.unrelated", 2)]);
        assert_eq!(
            metadata_amount(&a, &b, DependencyType::Successor, AnalysisMode::Intersection),
            1
        );
    }
}
