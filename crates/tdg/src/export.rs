//! TDG inspection utilities: Graphviz export and structural analytics.
//!
//! These exist for operators and papers alike — `dot` renderings of
//! merged TDGs are how deployment decisions get debugged, and the
//! analytics (critical path, metadata totals, width) bound what any
//! placement can achieve before running a solver.

use crate::analysis::DependencyType;
use crate::graph::{NodeId, Tdg};
use std::fmt::Write as _;

/// Renders the TDG in Graphviz `dot` format. Node labels carry the MAT
/// name and resource; edge labels carry the dependency type and `A(a,b)`.
pub fn to_dot(tdg: &Tdg) -> String {
    let mut out = String::from("digraph tdg {\n  rankdir=LR;\n  node [shape=box];\n");
    for id in tdg.node_ids() {
        let node = tdg.node(id);
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\nR={:.2}\"];",
            id.index(),
            node.name,
            node.mat.resource()
        );
    }
    for e in tdg.edges() {
        let style = match e.dep {
            DependencyType::Match => "solid",
            DependencyType::Action => "bold",
            DependencyType::ReverseMatch => "dashed",
            DependencyType::Successor => "dotted",
            // Relaxed edges render like their base type but greyed out.
            DependencyType::RelaxedMatch
            | DependencyType::RelaxedAction
            | DependencyType::RelaxedReverse => "solid, color=gray",
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{} {}B\", style={}];",
            e.from.index(),
            e.to.index(),
            e.dep,
            e.bytes,
            style
        );
    }
    out.push_str("}\n");
    out
}

/// Structural statistics of a TDG.
#[derive(Debug, Clone, PartialEq)]
pub struct TdgStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Total resource units.
    pub total_resource: f64,
    /// Total metadata bytes over all edges.
    pub total_metadata_bytes: u64,
    /// Length (in nodes) of the longest dependency chain — a lower bound
    /// on the pipeline stages any deployment needs end to end.
    pub critical_path_len: usize,
    /// Metadata bytes along the heaviest path — an upper bound on what a
    /// single unlucky packet could be asked to carry end to end.
    pub critical_path_bytes: u64,
    /// Maximum antichain-ish width: nodes with no incoming edges.
    pub roots: usize,
}

/// Computes [`TdgStats`].
pub fn stats(tdg: &Tdg) -> TdgStats {
    let order = tdg.topo_order().expect("TDGs are DAGs");
    let mut len = vec![1usize; tdg.node_count()];
    let mut bytes = vec![0u64; tdg.node_count()];
    for &id in &order {
        for e in tdg.out_edges(id) {
            let t = e.to.index();
            len[t] = len[t].max(len[id.index()] + 1);
            bytes[t] = bytes[t].max(bytes[id.index()] + u64::from(e.bytes));
        }
    }
    let roots = tdg.node_ids().filter(|&id| tdg.in_edges(id).next().is_none()).count();
    TdgStats {
        nodes: tdg.node_count(),
        edges: tdg.edge_count(),
        total_resource: tdg.total_resource(),
        total_metadata_bytes: tdg.edges().iter().map(|e| u64::from(e.bytes)).sum(),
        critical_path_len: len.iter().copied().max().unwrap_or(0),
        critical_path_bytes: bytes.iter().copied().max().unwrap_or(0),
        roots,
    }
}

/// The nodes of one longest dependency chain, in order.
pub fn critical_path(tdg: &Tdg) -> Vec<NodeId> {
    let order = tdg.topo_order().expect("TDGs are DAGs");
    let n = tdg.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut len = vec![1usize; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for &id in &order {
        for e in tdg.out_edges(id) {
            let t = e.to.index();
            if len[id.index()] + 1 > len[t] {
                len[t] = len[id.index()] + 1;
                pred[t] = Some(id);
            }
        }
    }
    let mut cur = (0..n).max_by_key(|&i| len[i]).map(NodeId::from_index).expect("n > 0");
    let mut path = vec![cur];
    while let Some(p) = pred[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

impl NodeId {
    /// Internal: rebuild an id from a dense index (indices come from this
    /// crate's own iteration, so this stays crate-private).
    pub(crate) fn from_index(i: usize) -> NodeId {
        NodeId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisMode;
    use crate::merge::merge_all;
    use hermes_dataplane::library;

    fn merged() -> Tdg {
        merge_all(
            library::real_programs()
                .iter()
                .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
                .collect(),
        )
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let tdg = merged();
        let dot = to_dot(&tdg);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("label=\"").count(), tdg.node_count() + tdg.edge_count());
        assert!(dot.contains("hash_5tuple"));
    }

    #[test]
    fn stats_are_consistent() {
        let tdg = merged();
        let s = stats(&tdg);
        assert_eq!(s.nodes, tdg.node_count());
        assert_eq!(s.edges, tdg.edge_count());
        assert!(s.critical_path_len >= 2);
        assert!(s.critical_path_len <= s.nodes);
        assert!(s.roots >= 1);
        assert!(s.critical_path_bytes <= s.total_metadata_bytes);
    }

    #[test]
    fn critical_path_is_a_real_chain() {
        let tdg = merged();
        let path = critical_path(&tdg);
        assert_eq!(path.len(), stats(&tdg).critical_path_len);
        for w in path.windows(2) {
            assert!(
                tdg.out_edges(w[0]).any(|e| e.to == w[1]),
                "consecutive path nodes must be linked"
            );
        }
    }

    #[test]
    fn empty_tdg_stats() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        let s = stats(&tdg);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.critical_path_len, 0);
        assert!(critical_path(&tdg).is_empty());
    }
}
