//! State-access classification: which fields admit relaxed placement.
//!
//! Every field a workload touches gets a verdict from a four-point
//! lattice, ordered strongest-claim-first:
//!
//! | Verdict | Proof obligation |
//! |---|---|
//! | `ReadOnly` | no MAT writes the field |
//! | `ReadMostlyReplicable` | all writes idempotent, pure functions of packet headers; writer MATs match only on headers; strictly more reader MATs than writer MATs |
//! | `CommutativeUpdate(k)` | every write is a `Fold` of one common kind `k` whose sources are packet headers |
//! | `SingleWriter` | anything else (the conservative default) |
//!
//! `ReadMostlyReplicable` captures Cascone-style read-mostly state: the
//! producing MAT is a pure function of the packet plus control-plane
//! rules, so each consumer's switch can *replicate* the producer instead
//! of having the value shipped over. `CommutativeUpdate` captures
//! P4COM-style aggregation: fold kinds are commutative-associative
//! monoids, so each switch may accumulate into its own identity-initialized
//! partial and the partials combine at any true reader in any order.
//!
//! [`relaxed_type`] turns the verdicts into edge relaxations; it is the
//! single justification rule shared by TDG construction (applying the
//! relaxation) and the plan verifier (rejecting plans whose relaxed edges
//! the rule does not certify).
//!
//! The classifier is a single linear pass over ops with interned
//! accumulators; `hermes-analysis` keeps a naive set-based oracle pinned
//! byte-identical under proptest.

use crate::analysis::DependencyType;
use hermes_dataplane::action::{FoldOp, PrimitiveOp};
use hermes_dataplane::fields::Field;
use hermes_dataplane::Mat;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The lattice verdict for one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StateClass {
    /// No MAT writes the field.
    ReadOnly,
    /// Idempotent header-pure writes, more readers than writers: consumers
    /// may replicate the producer locally.
    ReadMostlyReplicable,
    /// All writes are folds of the carried kind with header sources:
    /// split accumulation is sound.
    CommutativeUpdate(FoldOp),
    /// The conservative default; no relaxation applies.
    SingleWriter,
}

impl StateClass {
    /// `true` when edges justified by this field may be relaxed at all.
    pub fn is_relaxable(self) -> bool {
        matches!(self, StateClass::ReadMostlyReplicable | StateClass::CommutativeUpdate(_))
    }

    /// Stable lower-case label used by diagnostics and the state report.
    pub fn label(self) -> &'static str {
        match self {
            StateClass::ReadOnly => "read-only",
            StateClass::ReadMostlyReplicable => "read-mostly-replicable",
            StateClass::CommutativeUpdate(_) => "commutative-update",
            StateClass::SingleWriter => "single-writer",
        }
    }
}

impl fmt::Display for StateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateClass::CommutativeUpdate(op) => write!(f, "commutative-update({op})"),
            other => f.write_str(other.label()),
        }
    }
}

/// Per-field evidence the classifier accumulated alongside the verdict —
/// surfaced in the `--state-report` view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldEvidence {
    /// The verdict.
    pub class: StateClass,
    /// Distinct MATs writing the field.
    pub writer_mats: usize,
    /// Distinct MATs consuming the field without writing it.
    pub reader_mats: usize,
}

/// The classification of every field a set of MATs touches.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateClassification {
    verdicts: BTreeMap<Field, FieldEvidence>,
}

/// Per-field accumulator for the linear classification pass.
struct FieldAcc {
    writer_mats: BTreeSet<usize>,
    reader_mats: BTreeSet<usize>,
    fold_kinds: BTreeSet<FoldOp>,
    non_fold_write: bool,
    fold_srcs_header_pure: bool,
    writes_replicable: bool,
    writer_matches_header_pure: bool,
}

// Not derived: an untouched field starts with every universally-quantified
// property vacuously true; evidence can only strike properties out.
impl Default for FieldAcc {
    fn default() -> Self {
        FieldAcc {
            writer_mats: BTreeSet::new(),
            reader_mats: BTreeSet::new(),
            fold_kinds: BTreeSet::new(),
            non_fold_write: false,
            fold_srcs_header_pure: true,
            writes_replicable: true,
            writer_matches_header_pure: true,
        }
    }
}

impl StateClassification {
    /// Classifies every field touched by `mats` (typically the node set of
    /// a merged TDG — classification is a property of the *final* workload,
    /// since merging can add writers and demote a verdict).
    pub fn of_mats<'a, I>(mats: I) -> Self
    where
        I: IntoIterator<Item = &'a Mat>,
    {
        let mut accs: BTreeMap<Field, FieldAcc> = BTreeMap::new();
        for (i, mat) in mats.into_iter().enumerate() {
            let written = mat.written_fields();
            let match_headers_only = mat.match_fields().iter().all(Field::is_header);
            let mut consumed: BTreeSet<Field> = mat.match_fields();
            consumed.extend(mat.action_read_fields());
            for f in &consumed {
                if !written.contains(f) {
                    accs.entry(f.clone()).or_default().reader_mats.insert(i);
                }
            }
            for action in mat.actions() {
                for op in action.ops() {
                    let op_reads_headers_only = op.reads().iter().all(|f| f.is_header());
                    for dst in op.writes() {
                        let acc = accs.entry(dst.clone()).or_default();
                        acc.writer_mats.insert(i);
                        acc.writer_matches_header_pure &= match_headers_only;
                        match op {
                            PrimitiveOp::Fold { srcs, op: kind, .. } => {
                                acc.fold_kinds.insert(*kind);
                                acc.fold_srcs_header_pure &= srcs.iter().all(Field::is_header);
                            }
                            _ => acc.non_fold_write = true,
                        }
                        acc.writes_replicable &= !op.is_stateful()
                            && op.writes_are_idempotent()
                            && op_reads_headers_only;
                    }
                }
            }
        }
        let verdicts = accs
            .into_iter()
            .map(|(f, acc)| {
                let class = Self::verdict(&f, &acc);
                let evidence = FieldEvidence {
                    class,
                    writer_mats: acc.writer_mats.len(),
                    reader_mats: acc.reader_mats.len(),
                };
                (f, evidence)
            })
            .collect();
        StateClassification { verdicts }
    }

    fn verdict(field: &Field, acc: &FieldAcc) -> StateClass {
        if acc.writer_mats.is_empty() {
            return StateClass::ReadOnly;
        }
        // Relaxation is only ever claimed for metadata: header writes alter
        // the packet itself and stay order-sensitive conservatively.
        if field.is_metadata() {
            if !acc.non_fold_write && acc.fold_kinds.len() == 1 && acc.fold_srcs_header_pure {
                let kind = *acc.fold_kinds.iter().next().expect("len 1");
                return StateClass::CommutativeUpdate(kind);
            }
            if acc.writes_replicable
                && acc.writer_matches_header_pure
                && acc.reader_mats.len() > acc.writer_mats.len()
            {
                return StateClass::ReadMostlyReplicable;
            }
        }
        StateClass::SingleWriter
    }

    /// The verdict for `field`; fields the workload never touches default
    /// to the conservative `SingleWriter`.
    pub fn class(&self, field: &Field) -> StateClass {
        self.verdicts.get(field).map_or(StateClass::SingleWriter, |e| e.class)
    }

    /// All verdicts with their evidence, in field order.
    pub fn verdicts(&self) -> impl Iterator<Item = (&Field, &FieldEvidence)> {
        self.verdicts.iter()
    }

    /// Number of classified fields.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// `true` when no field was classified.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

/// `true` iff every read of `field` inside `b`'s actions is a fold of
/// kind `kind` accumulating *into* `field` (not consuming it as a source).
fn consumes_only_via_fold(b: &Mat, field: &Field, kind: FoldOp) -> bool {
    b.actions().iter().flat_map(|a| a.ops()).all(|op| match op {
        PrimitiveOp::Fold { dst, srcs, op: k } if dst == field => {
            *k == kind && !srcs.contains(field)
        }
        other => !other.reads().contains(&field),
    })
}

/// The edge-relaxation rule: given an edge `a -> b` of base type `base`
/// and the workload's classification, returns the relaxed dependency type
/// when every field justifying the edge is proven relaxable, or `None`
/// when the edge must keep its full obligations.
///
/// - **Match** relaxes when each justifying field (written by `a`,
///   consumed by `b`) is `ReadMostlyReplicable` (consumer replicates the
///   producer), or `CommutativeUpdate(k)` with `b` consuming it *only* as
///   the accumulator of its own `Fold(k)` — never matched on and never
///   read as a source value (folder→folder edges; the combined total
///   still flows to true readers over un-relaxed edges).
/// - **Action** relaxes when each shared written field is
///   `CommutativeUpdate` (the writes commute, so write order is free).
/// - **ReverseMatch** (already zero bytes) relaxes its ordering when each
///   justifying field is relaxable: replicable state tolerates
///   epoch-skewed reads, and a commutative accumulator's observed partial
///   is within relaxed-read semantics.
/// - **Successor** never relaxes: control dependence is not a state
///   access.
pub fn relaxed_type(
    a: &Mat,
    b: &Mat,
    base: DependencyType,
    class: &StateClassification,
) -> Option<DependencyType> {
    let justified = |fields: BTreeSet<Field>, ok: &dyn Fn(&Field) -> bool| {
        !fields.is_empty() && fields.iter().all(ok)
    };
    match base.base() {
        DependencyType::Match => {
            let wa = a.written_fields();
            let mut consumed = b.match_fields();
            consumed.extend(b.action_read_fields());
            let justifying: BTreeSet<Field> =
                wa.into_iter().filter(|f| consumed.contains(f)).collect();
            let matched = b.match_fields();
            justified(justifying, &|f| match class.class(f) {
                StateClass::ReadMostlyReplicable => true,
                StateClass::CommutativeUpdate(k) => {
                    !matched.contains(f) && consumes_only_via_fold(b, f, k)
                }
                _ => false,
            })
            .then_some(DependencyType::RelaxedMatch)
        }
        DependencyType::Action => {
            let wa = a.written_fields();
            let wb = b.written_fields();
            let justifying: BTreeSet<Field> = wa.into_iter().filter(|f| wb.contains(f)).collect();
            justified(justifying, &|f| matches!(class.class(f), StateClass::CommutativeUpdate(_)))
                .then_some(DependencyType::RelaxedAction)
        }
        DependencyType::ReverseMatch => {
            let ma = a.match_fields();
            let wb = b.written_fields();
            let justifying: BTreeSet<Field> = ma.into_iter().filter(|f| wb.contains(f)).collect();
            justified(justifying, &|f| class.class(f).is_relaxable())
                .then_some(DependencyType::RelaxedReverse)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::library;
    use hermes_dataplane::mat::MatchKind;

    fn meta(name: &str, size: u32) -> Field {
        Field::metadata(name.to_owned(), size)
    }

    fn folder(name: &str, acc: &Field, src: &Field, op: FoldOp) -> Mat {
        Mat::builder(name.to_owned())
            .action(Action::new("f").with_op(PrimitiveOp::Fold {
                dst: acc.clone(),
                srcs: vec![src.clone()],
                op,
            }))
            .resource(0.1)
            .build()
            .unwrap()
    }

    fn reader(name: &str, f: &Field) -> Mat {
        Mat::builder(name.to_owned())
            .action(Action::new("r").with_op(PrimitiveOp::Compute {
                dst: Field::header("pkt.out", 4),
                srcs: vec![f.clone()],
            }))
            .resource(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn unwritten_field_is_read_only() {
        let f = meta("meta.x", 4);
        let m = Mat::builder("m")
            .match_field(f.clone(), MatchKind::Exact)
            .action(Action::new("n"))
            .resource(0.1)
            .build()
            .unwrap();
        let c = StateClassification::of_mats([&m]);
        assert_eq!(c.class(&f), StateClass::ReadOnly);
    }

    #[test]
    fn common_fold_kind_is_commutative() {
        let acc = meta("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        let f2 = folder("f2", &acc, &src, FoldOp::Add);
        let c = StateClassification::of_mats([&f1, &f2]);
        assert_eq!(c.class(&acc), StateClass::CommutativeUpdate(FoldOp::Add));
    }

    #[test]
    fn mixed_fold_kinds_are_single_writer() {
        let acc = meta("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        let f2 = folder("f2", &acc, &src, FoldOp::Max);
        let c = StateClassification::of_mats([&f1, &f2]);
        assert_eq!(c.class(&acc), StateClass::SingleWriter);
    }

    #[test]
    fn fold_from_metadata_source_is_not_commutative() {
        // The per-packet fold input must travel with the packet (headers);
        // a metadata source would itself need delivery.
        let acc = meta("meta.sum", 4);
        let src = meta("meta.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        let c = StateClassification::of_mats([&f1]);
        assert_eq!(c.class(&acc), StateClass::SingleWriter);
    }

    #[test]
    fn const_writer_with_majority_readers_is_replicable() {
        let f = meta("meta.cfg", 1);
        let w = Mat::builder("w")
            .action(Action::new("set").with_op(PrimitiveOp::SetConst { dst: f.clone() }))
            .resource(0.1)
            .build()
            .unwrap();
        let r1 = reader("r1", &f);
        let r2 = reader("r2", &f);
        let c = StateClassification::of_mats([&w, &r1, &r2]);
        assert_eq!(c.class(&f), StateClass::ReadMostlyReplicable);
        // One reader is not a majority: 1 writer vs 1 reader.
        let c = StateClassification::of_mats([&w, &r1]);
        assert_eq!(c.class(&f), StateClass::SingleWriter);
    }

    #[test]
    fn metadata_matched_writer_is_not_replicable() {
        // A producer matching on metadata cannot be replicated from packet
        // content alone.
        let f = meta("meta.cfg", 1);
        let gate = meta("meta.gate", 1);
        let w = Mat::builder("w")
            .match_field(gate, MatchKind::Exact)
            .action(Action::new("set").with_op(PrimitiveOp::SetConst { dst: f.clone() }))
            .resource(0.1)
            .build()
            .unwrap();
        let r1 = reader("r1", &f);
        let r2 = reader("r2", &f);
        let c = StateClassification::of_mats([&w, &r1, &r2]);
        assert_eq!(c.class(&f), StateClass::SingleWriter);
    }

    #[test]
    fn register_and_self_referential_writes_stay_single_writer() {
        let out = meta("meta.count", 4);
        let idx = Field::header("pkt.idx", 4);
        let reg =
            Mat::builder("reg")
                .action(Action::new("bump").with_op(PrimitiveOp::RegisterOp {
                    index: idx.clone(),
                    out: Some(out.clone()),
                }))
                .resource(0.1)
                .build()
                .unwrap();
        let r1 = reader("r1", &out);
        let r2 = reader("r2", &out);
        let c = StateClassification::of_mats([&reg, &r1, &r2]);
        assert_eq!(c.class(&out), StateClass::SingleWriter);

        let ewma = meta("meta.ewma", 4);
        let s =
            Mat::builder("s")
                .action(Action::new("ewma").with_op(PrimitiveOp::Compute {
                    dst: ewma.clone(),
                    srcs: vec![ewma.clone(), idx],
                }))
                .resource(0.1)
                .build()
                .unwrap();
        let c = StateClassification::of_mats([&s, &reader("r1", &ewma), &reader("r2", &ewma)]);
        assert_eq!(c.class(&ewma), StateClass::SingleWriter);
    }

    #[test]
    fn written_header_is_single_writer() {
        let h = Field::header("pkt.mark", 1);
        let w = Mat::builder("w")
            .action(Action::new("set").with_op(PrimitiveOp::SetConst { dst: h.clone() }))
            .resource(0.1)
            .build()
            .unwrap();
        let c = StateClassification::of_mats([&w, &reader("r1", &h), &reader("r2", &h)]);
        assert_eq!(c.class(&h), StateClass::SingleWriter);
    }

    #[test]
    fn folder_pair_relaxes_but_reader_edge_does_not() {
        let acc = meta("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        let f2 = folder("f2", &acc, &src, FoldOp::Add);
        let r = reader("r", &acc);
        let c = StateClassification::of_mats([&f1, &f2, &r]);
        // Folder -> folder: the downstream consumes the accumulator only
        // as its own fold destination.
        assert_eq!(
            relaxed_type(&f1, &f2, DependencyType::Match, &c),
            Some(DependencyType::RelaxedMatch)
        );
        // Folder -> true reader: the partials must be delivered.
        assert_eq!(relaxed_type(&f1, &r, DependencyType::Match, &c), None);
    }

    #[test]
    fn matching_on_the_accumulator_blocks_relaxation() {
        let acc = meta("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        // A folder that ALSO matches on the accumulator observes the value.
        let f2 = Mat::builder("f2")
            .match_field(acc.clone(), MatchKind::Exact)
            .action(Action::new("f").with_op(PrimitiveOp::Fold {
                dst: acc.clone(),
                srcs: vec![src],
                op: FoldOp::Add,
            }))
            .resource(0.1)
            .build()
            .unwrap();
        let c = StateClassification::of_mats([&f1, &f2]);
        assert_eq!(relaxed_type(&f1, &f2, DependencyType::Match, &c), None);
    }

    #[test]
    fn successor_never_relaxes() {
        let acc = meta("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        let f2 = folder("f2", &acc, &src, FoldOp::Add);
        let c = StateClassification::of_mats([&f1, &f2]);
        assert_eq!(relaxed_type(&f1, &f2, DependencyType::Successor, &c), None);
    }

    #[test]
    fn action_edge_relaxes_only_for_commutative_fields() {
        let acc = meta("meta.sum", 4);
        let src = Field::header("pkt.v", 4);
        let f1 = folder("f1", &acc, &src, FoldOp::Add);
        let f2 = folder("f2", &acc, &src, FoldOp::Add);
        let c = StateClassification::of_mats([&f1, &f2]);
        assert_eq!(
            relaxed_type(&f1, &f2, DependencyType::Action, &c),
            Some(DependencyType::RelaxedAction)
        );
        // Plain double-writers stay ordered.
        let w1 = Mat::builder("w1")
            .action(Action::writing("w", [acc.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let w2 = Mat::builder("w2")
            .action(Action::writing("w", [acc.clone()]))
            .resource(0.1)
            .build()
            .unwrap();
        let c = StateClassification::of_mats([&w1, &w2]);
        assert_eq!(relaxed_type(&w1, &w2, DependencyType::Action, &c), None);
    }

    #[test]
    fn library_real_programs_classify_conservatively() {
        // The paper's testbed workload has no folds: nothing may claim
        // CommutativeUpdate, so relaxation cannot touch its plans.
        let programs = library::real_programs();
        let mats: Vec<&Mat> = programs.iter().flat_map(|p| p.tables()).collect();
        let c = StateClassification::of_mats(mats.iter().copied());
        assert!(c.verdicts().all(|(_, e)| !matches!(e.class, StateClass::CommutativeUpdate(_))));
    }

    #[test]
    fn allreduce_accumulator_is_commutative() {
        let p = library::aggregation::allreduce();
        let mats: Vec<&Mat> = p.tables().iter().collect();
        let c = StateClassification::of_mats(mats.iter().copied());
        assert_eq!(c.class(&meta("meta.agg_sum", 4)), StateClass::CommutativeUpdate(FoldOp::Add));
        assert_eq!(c.class(&Field::header("pkt.val", 4)), StateClass::ReadOnly);
    }
}
