//! Table dependency graphs (TDGs) for the Hermes deployment framework.
//!
//! Implements the program analyzer of the paper's §IV (Algorithm 1):
//!
//! - [`graph`] — the TDG itself: MAT nodes, typed dependency edges, DAG
//!   utilities (topological order, induced subgraphs, cross-cut metadata).
//! - [`analysis`] — dependency typing (match 𝕄 / action 𝔸 / reverse ℝ /
//!   successor 𝕊) and the metadata amount `A(a,b)` each edge carries.
//! - [`merge`] — SPEED-style merging of per-program TDGs into the merged
//!   TDG `T_m`, eliminating structurally redundant MATs.
//!
//! # Quick start
//!
//! ```
//! use hermes_dataplane::library;
//! use hermes_tdg::{merge_all, AnalysisMode, Tdg};
//!
//! let tdgs: Vec<Tdg> = library::real_programs()
//!     .iter()
//!     .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
//!     .collect();
//! let merged = merge_all(tdgs);
//! assert!(merged.is_dag());
//! assert!(merged.max_edge_bytes() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod export;
pub mod graph;
pub mod merge;
pub mod stateaccess;

pub use analysis::{
    classify, classify_profiles, metadata_amount, metadata_amount_profiles, AnalysisMode,
    DependencyType, MatProfile,
};
pub use export::{critical_path, stats, to_dot, TdgStats};
pub use graph::{NodeId, Tdg, TdgEdge, TdgNode};
pub use merge::{merge_all, merge_pair};
pub use stateaccess::{relaxed_type, FieldEvidence, StateClass, StateClassification};
