//! The table dependency graph (TDG).
//!
//! Nodes are MATs; directed edges are typed MAT dependencies annotated with
//! the metadata amount `A(a,b)` from Algorithm 1. A TDG is always a DAG:
//! edges derived from a single program point forward in program order, and
//! [`crate::merge`] refuses merges that would introduce cycles.

use crate::analysis::{
    classify_profiles, metadata_amount, metadata_amount_profiles, AnalysisMode, DependencyType,
    MatProfile,
};
use hermes_dataplane::{FieldTable, Mat, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a node within one [`Tdg`]. Ids are dense indices and are
/// only meaningful relative to the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A TDG node: one MAT plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdgNode {
    /// Program-qualified name, e.g. `"acl/acl_classify"`. After merging, a
    /// shared node keeps the name of its first occurrence.
    pub name: String,
    /// The table itself.
    pub mat: Mat,
    /// Names of every program this node serves (grows during merging).
    pub programs: BTreeSet<String>,
}

/// A typed dependency edge with its metadata amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdgEdge {
    /// Upstream MAT.
    pub from: NodeId,
    /// Downstream MAT.
    pub to: NodeId,
    /// Dependency type (𝕄/𝔸/ℝ/𝕊).
    pub dep: DependencyType,
    /// `A(a,b)` — metadata bytes that must ride on each packet when the two
    /// endpoints are deployed on different switches.
    pub bytes: u32,
}

/// A table dependency graph.
///
/// # Examples
///
/// ```
/// use hermes_dataplane::library;
/// use hermes_tdg::{AnalysisMode, Tdg};
///
/// let tdg = Tdg::from_program(&library::l3_router(), AnalysisMode::PaperLiteral);
/// assert_eq!(tdg.node_count(), 3);
/// assert!(tdg.is_dag());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tdg {
    nodes: Vec<TdgNode>,
    edges: Vec<TdgEdge>,
    mode: AnalysisMode,
}

impl Tdg {
    /// Creates an empty TDG using the given analysis mode.
    pub fn new(mode: AnalysisMode) -> Self {
        Tdg { nodes: Vec::new(), edges: Vec::new(), mode }
    }

    /// Builds the TDG of a single program: one node per MAT, one typed edge
    /// per dependent ordered pair, with `A(a,b)` precomputed.
    pub fn from_program(program: &Program, mode: AnalysisMode) -> Self {
        let mut tdg = Tdg::new(mode);
        let tables = program.tables();
        for t in tables {
            tdg.push_node(TdgNode {
                name: format!("{}/{}", program.name(), t.name()),
                mat: t.clone(),
                programs: BTreeSet::from([program.name().to_owned()]),
            });
        }
        let gates: BTreeSet<(usize, usize)> = program.gates().iter().copied().collect();
        // Intern every field once so the O(n²) pair loop below runs on
        // bitset profiles instead of BTreeSet walks; the equivalence with
        // `classify`/`metadata_amount` is pinned by the property suite.
        let mut table = FieldTable::new();
        let profiles: Vec<MatProfile> =
            tables.iter().map(|t| MatProfile::build(t, &mut table)).collect();
        for i in 0..tables.len() {
            for j in (i + 1)..tables.len() {
                let gated = gates.contains(&(i, j));
                if let Some(dep) = classify_profiles(&profiles[i], &profiles[j], gated) {
                    let bytes =
                        metadata_amount_profiles(&table, &profiles[i], &profiles[j], dep, mode);
                    tdg.edges.push(TdgEdge { from: NodeId(i), to: NodeId(j), dep, bytes });
                }
            }
        }
        if mode.relaxes_state() {
            tdg.relax_edges();
        }
        tdg
    }

    /// The analysis mode used for `A(a,b)`.
    pub fn mode(&self) -> AnalysisMode {
        self.mode
    }

    /// Number of nodes `|V_Tm|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E_Tm|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[TdgNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[TdgEdge] {
        &self.edges
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &TdgNode {
        &self.nodes[id.0]
    }

    /// Iterator over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Looks a node up by its program-qualified name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Edges leaving `id`.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &TdgEdge> + '_ {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// Edges entering `id`.
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &TdgEdge> + '_ {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// Total normalized resource requirement `Σ R(a)` over all nodes.
    pub fn total_resource(&self) -> f64 {
        self.nodes.iter().map(|n| n.mat.resource()).sum()
    }

    /// Sum of `A(a,b)` over edges crossing from `left` into `right`.
    /// This is the quantity Algorithm 2 minimizes when splitting.
    pub fn cross_bytes(&self, left: &BTreeSet<NodeId>, right: &BTreeSet<NodeId>) -> u64 {
        self.edges
            .iter()
            .filter(|e| left.contains(&e.from) && right.contains(&e.to))
            .map(|e| u64::from(e.bytes))
            .sum()
    }

    /// [`Tdg::cross_bytes`] with a caller-owned scratch buffer, for hot
    /// paths that probe many cuts: `membership` is cleared and resized to
    /// the node count, then each node is flagged left (bit 0) / right
    /// (bit 1) so the edge scan needs no set lookups and the call allocates
    /// only when the buffer is still too small.
    pub fn cross_bytes_with(
        &self,
        left: &BTreeSet<NodeId>,
        right: &BTreeSet<NodeId>,
        membership: &mut Vec<u8>,
    ) -> u64 {
        membership.clear();
        membership.resize(self.nodes.len(), 0);
        for id in left {
            membership[id.0] |= 1;
        }
        for id in right {
            membership[id.0] |= 2;
        }
        self.edges
            .iter()
            .filter(|e| membership[e.from.0] & 1 != 0 && membership[e.to.0] & 2 != 0)
            .map(|e| u64::from(e.bytes))
            .sum()
    }

    /// `true` iff the graph has no directed cycle.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Kahn topological order (stable: ties broken by node index), or
    /// `None` if the graph contains a cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0] += 1;
        }
        let mut out_adj = vec![Vec::new(); n];
        for e in &self.edges {
            out_adj[e.from.0].push(e.to.0);
        }
        // BTreeSet gives deterministic smallest-index-first extraction.
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&u) = ready.iter().next() {
            ready.remove(&u);
            order.push(NodeId(u));
            for &v in &out_adj[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    ready.insert(v);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// The subgraph induced by `keep`, with nodes re-indexed densely in the
    /// iteration order of `keep`. Edges with either endpoint outside `keep`
    /// are dropped.
    pub fn induced(&self, keep: &BTreeSet<NodeId>) -> Tdg {
        let mut mapping = vec![usize::MAX; self.nodes.len()];
        let mut nodes = Vec::with_capacity(keep.len());
        for (new_idx, old) in keep.iter().enumerate() {
            mapping[old.0] = new_idx;
            nodes.push(self.nodes[old.0].clone());
        }
        let edges = self
            .edges
            .iter()
            .filter(|e| keep.contains(&e.from) && keep.contains(&e.to))
            .map(|e| TdgEdge { from: NodeId(mapping[e.from.0]), to: NodeId(mapping[e.to.0]), ..*e })
            .collect();
        Tdg { nodes, edges, mode: self.mode }
    }

    /// Recomputes `A(a,b)` on every edge under a (possibly different)
    /// analysis mode. Used after merging and by ablations. Relaxations are
    /// rebuilt from scratch: edges are first restored to their base types,
    /// then re-relaxed only when the new mode asks for it.
    pub fn reanalyze(&mut self, mode: AnalysisMode) {
        self.mode = mode;
        let mut table = FieldTable::new();
        let profiles: Vec<MatProfile> =
            self.nodes.iter().map(|n| MatProfile::build(&n.mat, &mut table)).collect();
        for e in &mut self.edges {
            e.dep = e.dep.base();
            e.bytes = metadata_amount_profiles(
                &table,
                &profiles[e.from.0],
                &profiles[e.to.0],
                e.dep,
                mode,
            );
        }
        if mode.relaxes_state() {
            self.relax_edges();
        }
    }

    /// Restores every relaxed edge to its base dependency type with the
    /// conservative `A(a,b)`. The inverse of [`Tdg::relax_edges`]; merging
    /// runs it first because merging can add writers to a field and demote
    /// the verdict that justified a relaxation.
    pub fn restore_base_edges(&mut self) {
        if !self.edges.iter().any(|e| e.dep.is_relaxed()) {
            return;
        }
        let mut table = FieldTable::new();
        let profiles: Vec<MatProfile> =
            self.nodes.iter().map(|n| MatProfile::build(&n.mat, &mut table)).collect();
        for e in &mut self.edges {
            if e.dep.is_relaxed() {
                e.dep = e.dep.base();
                e.bytes = metadata_amount_profiles(
                    &table,
                    &profiles[e.from.0],
                    &profiles[e.to.0],
                    e.dep,
                    self.mode,
                );
            }
        }
    }

    /// Runs the state-access relaxation pass: classifies every field over
    /// the *current* node set and downgrades each edge whose justifying
    /// fields are all proven relaxable to its zero-byte relaxed shadow
    /// type. Sound only as a function of the final node set, which is why
    /// merging restores base edges first and re-relaxes at the end.
    pub fn relax_edges(&mut self) {
        let classification =
            crate::stateaccess::StateClassification::of_mats(self.nodes.iter().map(|n| &n.mat));
        for e in &mut self.edges {
            let a = &self.nodes[e.from.0].mat;
            let b = &self.nodes[e.to.0].mat;
            if let Some(relaxed) = crate::stateaccess::relaxed_type(a, b, e.dep, &classification) {
                e.dep = relaxed;
                e.bytes = 0;
            }
        }
    }

    /// The largest single-edge metadata amount in the graph.
    pub fn max_edge_bytes(&self) -> u32 {
        self.edges.iter().map(|e| e.bytes).max().unwrap_or(0)
    }

    /// A copy of the graph in which every edge carries `bytes` of
    /// metadata. This is the special case of the paper's Theorem 1
    /// (`A(a,b) = 1` reduces P#1 to bin packing) and is used by
    /// cut-count-minimizing baselines like Flightplan.
    pub fn with_uniform_edge_bytes(&self, bytes: u32) -> Tdg {
        let mut copy = self.clone();
        for e in &mut copy.edges {
            e.bytes = bytes;
        }
        copy
    }

    pub(crate) fn push_node(&mut self, node: TdgNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub(crate) fn push_edge(&mut self, edge: TdgEdge) {
        debug_assert!(edge.from.0 < self.nodes.len() && edge.to.0 < self.nodes.len());
        self.edges.push(edge);
    }

    /// Direct construction from parts, used by merging and tests.
    pub(crate) fn from_parts(nodes: Vec<TdgNode>, edges: Vec<TdgEdge>, mode: AnalysisMode) -> Self {
        Tdg { nodes, edges, mode }
    }

    /// Builds a TDG directly from explicit MATs and typed edges, computing
    /// `A(a,b)` for each. Mainly useful for tests and worked examples where
    /// the dependency structure is given rather than inferred.
    pub fn from_mats_and_edges(
        mats: Vec<(String, Mat)>,
        edges: Vec<(usize, usize, DependencyType)>,
        mode: AnalysisMode,
    ) -> Self {
        let nodes: Vec<TdgNode> = mats
            .into_iter()
            .map(|(name, mat)| TdgNode { name, mat, programs: BTreeSet::new() })
            .collect();
        let edges = edges
            .into_iter()
            .map(|(from, to, dep)| {
                let bytes = metadata_amount(&nodes[from].mat, &nodes[to].mat, dep, mode);
                TdgEdge { from: NodeId(from), to: NodeId(to), dep, bytes }
            })
            .collect();
        Tdg { nodes, edges, mode }
    }
}

impl fmt::Display for Tdg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TDG({} nodes, {} edges, R={:.2}, max A={} B)",
            self.node_count(),
            self.edge_count(),
            self.total_resource(),
            self.max_edge_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::library;
    use hermes_dataplane::mat::MatchKind;

    fn chain_program(n: usize, bytes: u32) -> Program {
        // t0 -> t1 -> ... -> t{n-1}, each link carrying `bytes` of metadata.
        let mut b = Program::builder("chain");
        for i in 0..n {
            let mut mat = Mat::builder(format!("t{i}")).resource(0.1);
            if i > 0 {
                mat = mat.match_field(
                    Field::metadata(format!("meta.c{}", i - 1), bytes),
                    MatchKind::Exact,
                );
            }
            let writes = if i + 1 < n {
                vec![Field::metadata(format!("meta.c{i}"), bytes)]
            } else {
                Vec::new()
            };
            mat = mat.action(Action::writing("w", writes));
            b = b.table(mat.build().unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_yields_chain_edges() {
        let tdg = Tdg::from_program(&chain_program(4, 4), AnalysisMode::PaperLiteral);
        assert_eq!(tdg.node_count(), 4);
        assert_eq!(tdg.edge_count(), 3);
        for e in tdg.edges() {
            assert_eq!(e.dep, DependencyType::Match);
            assert_eq!(e.bytes, 4);
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let tdg = Tdg::from_program(&library::ecmp_lb(), AnalysisMode::PaperLiteral);
        let order = tdg.topo_order().expect("program TDGs are DAGs");
        let pos: Vec<usize> = {
            let mut pos = vec![0; order.len()];
            for (rank, id) in order.iter().enumerate() {
                pos[id.index()] = rank;
            }
            pos
        };
        for e in tdg.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn cycle_detected() {
        let prog = chain_program(2, 4);
        let mut tdg = Tdg::from_program(&prog, AnalysisMode::PaperLiteral);
        tdg.push_edge(TdgEdge {
            from: NodeId(1),
            to: NodeId(0),
            dep: DependencyType::Match,
            bytes: 1,
        });
        assert!(!tdg.is_dag());
        assert_eq!(tdg.topo_order(), None);
    }

    #[test]
    fn cross_bytes_counts_only_left_to_right() {
        let tdg = Tdg::from_program(&chain_program(4, 4), AnalysisMode::PaperLiteral);
        let left: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into();
        let right: BTreeSet<NodeId> = [NodeId(2), NodeId(3)].into();
        assert_eq!(tdg.cross_bytes(&left, &right), 4);
        assert_eq!(tdg.cross_bytes(&right, &left), 0);
    }

    #[test]
    fn cross_bytes_with_matches_reference_and_reuses_buffer() {
        let tdg = Tdg::from_program(&chain_program(4, 4), AnalysisMode::PaperLiteral);
        let left: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into();
        let right: BTreeSet<NodeId> = [NodeId(2), NodeId(3)].into();
        let mut scratch = Vec::new();
        assert_eq!(tdg.cross_bytes_with(&left, &right, &mut scratch), 4);
        assert_eq!(tdg.cross_bytes_with(&right, &left, &mut scratch), 0);
        // Overlapping sets behave like the reference too.
        let overlap: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        assert_eq!(
            tdg.cross_bytes_with(&overlap, &overlap, &mut scratch),
            tdg.cross_bytes(&overlap, &overlap)
        );
    }

    #[test]
    fn induced_subgraph_reindexes() {
        let tdg = Tdg::from_program(&chain_program(4, 4), AnalysisMode::PaperLiteral);
        let keep: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        let sub = tdg.induced(&keep);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.edges()[0].from, NodeId(0));
        assert_eq!(sub.edges()[0].to, NodeId(1));
        assert_eq!(sub.nodes()[0].name, "chain/t1");
    }

    #[test]
    fn reanalyze_switches_modes() {
        // Upstream writes an extra metadata field nobody consumes.
        let extra = Field::metadata("meta.extra", 12);
        let key = Field::metadata("meta.key", 4);
        let a = Mat::builder("a")
            .action(Action::writing("w", [key.clone(), extra]))
            .resource(0.1)
            .build()
            .unwrap();
        let b = Mat::builder("b")
            .match_field(key, MatchKind::Exact)
            .action(Action::new("noop"))
            .resource(0.1)
            .build()
            .unwrap();
        let p = Program::builder("p").table(a).table(b).build().unwrap();
        let mut tdg = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        assert_eq!(tdg.edges()[0].bytes, 16);
        tdg.reanalyze(AnalysisMode::Intersection);
        assert_eq!(tdg.edges()[0].bytes, 4);
    }

    #[test]
    fn total_resource_sums_nodes() {
        let tdg = Tdg::from_program(&chain_program(5, 4), AnalysisMode::PaperLiteral);
        assert!((tdg.total_resource() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn successor_gate_creates_edge_without_field_overlap() {
        let p = library::int_telemetry();
        let tdg = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        let transit = tdg.node_by_name("int_telemetry/int_transit").unwrap();
        let sink = tdg.node_by_name("int_telemetry/int_sink").unwrap();
        let edge = tdg
            .edges()
            .iter()
            .find(|e| e.from == transit && e.to == sink)
            .expect("gate edge present");
        // transit writes meta.int_report (1 B metadata) which the sink matches.
        assert_eq!(edge.dep, DependencyType::Match);
        assert_eq!(edge.bytes, 1);
    }

    #[test]
    fn relaxed_mode_zeroes_folder_edges_only() {
        let p = library::aggregation::allreduce();
        let conservative = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        let relaxed = Tdg::from_program(&p, AnalysisMode::RelaxedState);
        assert_eq!(conservative.node_count(), relaxed.node_count());
        assert_eq!(conservative.edge_count(), relaxed.edge_count());
        let emit = relaxed.node_by_name("allreduce/agg_emit").unwrap();
        for (c, r) in conservative.edges().iter().zip(relaxed.edges()) {
            assert_eq!(c.dep, r.dep.base(), "base types agree");
            if r.to == emit {
                // Partials must reach the true reader.
                assert!(!r.dep.is_relaxed());
                assert_eq!(r.bytes, c.bytes);
                assert!(r.bytes > 0);
            } else {
                // Folder -> folder edges relax to zero bytes.
                assert!(r.dep.is_relaxed(), "{:?}", r);
                assert_eq!(r.bytes, 0);
                assert!(c.bytes > 0);
            }
        }
    }

    #[test]
    fn default_mode_never_relaxes() {
        for p in library::aggregation::all() {
            let tdg = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
            assert!(tdg.edges().iter().all(|e| !e.dep.is_relaxed()));
        }
    }

    #[test]
    fn restore_base_edges_round_trips() {
        let p = library::aggregation::allreduce();
        let conservative = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        let mut relaxed = Tdg::from_program(&p, AnalysisMode::RelaxedState);
        relaxed.restore_base_edges();
        for (c, r) in conservative.edges().iter().zip(relaxed.edges()) {
            assert_eq!(c.dep, r.dep);
            assert_eq!(c.bytes, r.bytes);
        }
        // And reanalyze back into relaxed form.
        relaxed.reanalyze(AnalysisMode::RelaxedState);
        assert!(relaxed.edges().iter().any(|e| e.dep.is_relaxed()));
    }

    #[test]
    fn empty_graph_behaves() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        assert!(tdg.is_dag());
        assert_eq!(tdg.max_edge_bytes(), 0);
        assert_eq!(tdg.total_resource(), 0.0);
    }
}
