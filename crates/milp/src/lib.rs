//! A small mixed-integer linear programming solver.
//!
//! Hermes formulates network-wide program deployment as an MILP (paper
//! §V). The original evaluation solves it with Gurobi; this crate is the
//! self-contained substitute: a Gurobi-style model builder ([`model`]), a
//! two-phase dense-tableau simplex for LP relaxations ([`simplex`]), and a
//! depth-first branch-and-bound with time/node limits ([`branch`]).
//!
//! It is deliberately an *exact* solver with *limits*: small instances
//! solve to proven optimality, while large instances run until their time
//! budget expires and return the best incumbent — reproducing the
//! exponential-blowup behaviour the paper reports for ILP-based
//! frameworks (Exp#3).
//!
//! # Quick start
//!
//! ```
//! use hermes_milp::{solve, Direction, LinExpr, Model, Sense, SolverConfig, SolveStatus};
//!
//! // max 10a + 13b subject to 3a + 4b <= 6, a, b binary.
//! let mut m = Model::new("tiny-knapsack");
//! let a = m.binary("a");
//! let b = m.binary("b");
//! m.add_constraint("w", LinExpr::from(a) * 3.0 + LinExpr::from(b) * 4.0, Sense::Le, 6.0);
//! m.set_objective(Direction::Maximize, LinExpr::from(a) * 10.0 + LinExpr::from(b) * 13.0);
//! let solution = solve(&m, &SolverConfig::default())?;
//! assert_eq!(solution.status, SolveStatus::Optimal);
//! assert_eq!(solution.objective, 13.0);
//! # Ok::<(), hermes_milp::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch;
pub mod export;
pub mod model;
pub mod simplex;

pub use branch::{
    solve, solve_with_controls, MipSolution, SolveControls, SolveStatus, SolverConfig,
};
pub use export::write_lp;
pub use model::{
    Constraint, Direction, LinExpr, Model, ModelError, Sense, VarId, VarKind, Variable,
};
pub use simplex::{solve_lp, solve_relaxation, solve_relaxation_interruptible, LpResult, LpStatus};
