//! Model construction: variables, linear expressions, constraints.
//!
//! The builder mirrors the vocabulary of commodity solvers (Gurobi-style):
//! declare variables, combine them into [`LinExpr`]s with `+` and `*`, add
//! constraints with a comparison sense, and set a minimize/maximize
//! objective.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Identifier of a decision variable within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer in `{0, 1}`.
    Binary,
}

/// A decision variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Diagnostic name.
    pub name: String,
    /// Domain kind.
    pub kind: VarKind,
    /// Lower bound (finite; the solver requires bounded-below variables).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Built with operator sugar:
///
/// ```
/// use hermes_milp::{LinExpr, Model, VarKind};
///
/// let mut m = Model::new("demo");
/// let x = m.binary("x");
/// let y = m.continuous("y", 0.0, 10.0);
/// let expr = LinExpr::from(x) * 3.0 + LinExpr::from(y) + 1.0;
/// assert_eq!(expr.coefficient(x), 3.0);
/// assert_eq!(expr.constant(), 1.0);
/// # let _ = VarKind::Binary;
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant_expr(c: f64) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < 1e-12 {
            self.terms.remove(&var);
        }
        self
    }

    /// Sum of `coeff * var` pairs.
    pub fn sum<I: IntoIterator<Item = (VarId, f64)>>(pairs: I) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates `(var, coeff)` terms in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of distinct variables.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at a point (indexed by variable).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

/// Comparison sense of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "==",
        })
    }
}

/// A linear constraint `expr (<=|>=|==) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Diagnostic name.
    pub name: String,
    /// Left-hand side (its constant is folded into `rhs` at solve time).
    pub expr: LinExpr,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Errors raised by model validation before solving.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A variable's bounds are inverted or its lower bound is not finite.
    BadBounds {
        /// The offending variable's name.
        variable: String,
    },
    /// A coefficient or bound is NaN/infinite where finiteness is required.
    NonFinite {
        /// Where the bad number appeared.
        location: String,
    },
    /// The model has no objective set.
    NoObjective,
    /// The dense simplex tableau for this model would exceed the memory
    /// cap; solve a smaller model or use a sparse solver.
    TooLarge {
        /// Tableau cells the model would need.
        cells: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadBounds { variable } => {
                write!(
                    f,
                    "variable `{variable}` has invalid bounds (lower must be finite and <= upper)"
                )
            }
            ModelError::NonFinite { location } => write!(f, "non-finite number in {location}"),
            ModelError::NoObjective => f.write_str("model has no objective"),
            ModelError::TooLarge { cells } => {
                write!(f, "dense tableau of {cells} cells exceeds the memory cap")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A mixed-integer linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Option<(Direction, LinExpr)>,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Model { name: name.into(), variables: Vec::new(), constraints: Vec::new(), objective: None }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a variable with explicit kind and bounds.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> VarId {
        self.variables.push(Variable { name: name.into(), kind, lower, upper });
        VarId(self.variables.len() - 1)
    }

    /// Adds a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds a continuous variable in `[lower, upper]`.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, lower, upper)
    }

    /// Adds an integer variable in `[lower, upper]`.
    pub fn integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, VarKind::Integer, lower, upper)
    }

    /// Adds a constraint `expr (sense) rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint { name: name.into(), expr, sense, rhs });
    }

    /// Sets the objective, replacing any previous one.
    pub fn set_objective(&mut self, direction: Direction, expr: LinExpr) {
        self.objective = Some((direction, expr));
    }

    /// The variables in declaration order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints in declaration order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective, if set.
    pub fn objective(&self) -> Option<(&Direction, &LinExpr)> {
        self.objective.as_ref().map(|(d, e)| (d, e))
    }

    /// Ids of variables whose domains are integral (integer or binary).
    pub fn integral_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Validates bounds, finiteness, and objective presence.
    ///
    /// # Errors
    ///
    /// See [`ModelError`].
    pub fn validate(&self) -> Result<(), ModelError> {
        for v in &self.variables {
            if !v.lower.is_finite() || v.lower > v.upper {
                return Err(ModelError::BadBounds { variable: v.name.clone() });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() || !c.expr.constant().is_finite() {
                return Err(ModelError::NonFinite { location: format!("constraint `{}`", c.name) });
            }
            for (_, coeff) in c.expr.terms() {
                if !coeff.is_finite() {
                    return Err(ModelError::NonFinite {
                        location: format!("constraint `{}`", c.name),
                    });
                }
            }
        }
        match &self.objective {
            None => return Err(ModelError::NoObjective),
            Some((_, e)) => {
                for (_, coeff) in e.terms() {
                    if !coeff.is_finite() {
                        return Err(ModelError::NonFinite { location: "objective".to_owned() });
                    }
                }
            }
        }
        Ok(())
    }

    /// `true` iff the point satisfies every constraint and bound within
    /// `tol`, ignoring integrality.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (i, v) in self.variables.iter().enumerate() {
            if values[i] < v.lower - tol || values[i] > v.upper + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Model `{}` ({} vars / {} integral, {} constraints)",
            self.name,
            self.variables.len(),
            self.integral_vars().len(),
            self.constraints.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_arithmetic() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        let y = m.binary("y");
        let e = LinExpr::from(x) * 2.0 + LinExpr::from(y) - LinExpr::from(x) + 3.0;
        assert_eq!(e.coefficient(x), 1.0);
        assert_eq!(e.coefficient(y), 1.0);
        assert_eq!(e.constant(), 3.0);
        assert_eq!(e.eval(&[1.0, 0.0]), 4.0);
    }

    #[test]
    fn cancelled_terms_removed() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        let e = LinExpr::from(x) - LinExpr::from(x);
        assert!(e.is_empty());
        assert_eq!(e.coefficient(x), 0.0);
    }

    #[test]
    fn validate_catches_bad_bounds() {
        let mut m = Model::new("t");
        m.continuous("x", 5.0, 1.0);
        m.set_objective(Direction::Minimize, LinExpr::new());
        assert!(matches!(m.validate(), Err(ModelError::BadBounds { .. })));

        let mut m2 = Model::new("t2");
        m2.continuous("x", f64::NEG_INFINITY, 1.0);
        m2.set_objective(Direction::Minimize, LinExpr::new());
        assert!(matches!(m2.validate(), Err(ModelError::BadBounds { .. })));
    }

    #[test]
    fn validate_requires_objective() {
        let m = Model::new("t");
        assert_eq!(m.validate(), Err(ModelError::NoObjective));
    }

    #[test]
    fn validate_rejects_nan_coefficients() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        m.add_constraint("bad", LinExpr::from(x) * f64::NAN, Sense::Le, 1.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        assert!(matches!(m.validate(), Err(ModelError::NonFinite { .. })));
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.add_constraint("sum", LinExpr::from(x) + LinExpr::from(y), Sense::Le, 5.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[4.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[0.0], 1e-9));
    }

    #[test]
    fn integral_vars_listed() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 0.0, 1.0);
        let y = m.binary("y");
        let z = m.integer("z", 0.0, 7.0);
        assert_eq!(m.integral_vars(), vec![y, z]);
    }
}
