//! Branch and bound over the simplex relaxation.
//!
//! Depth-first with best-child-first ordering, bound-based pruning, and
//! wall-clock / node-count limits. When a limit fires with an incumbent in
//! hand, the solver returns [`SolveStatus::Feasible`] — the behaviour the
//! execution-time experiments rely on to emulate "ILP exceeded two hours"
//! (paper Fig. 7).

use crate::model::{Direction, Model, ModelError, VarId};
use crate::simplex::{solve_relaxation_interruptible, LpStatus};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Termination and tolerance knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Give up after this much wall-clock time (returning the incumbent).
    pub time_limit: Option<Duration>,
    /// Give up after exploring this many nodes.
    pub node_limit: Option<usize>,
    /// Stop when `(incumbent - bound) / max(|incumbent|, 1)` drops below
    /// this relative gap.
    pub mip_gap: f64,
    /// How close to an integer counts as integral.
    pub integrality_tol: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: None,
            node_limit: Some(2_000_000),
            mip_gap: 1e-9,
            integrality_tol: 1e-6,
        }
    }
}

impl SolverConfig {
    /// Config with just a time limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolverConfig { time_limit: Some(limit), ..Default::default() }
    }
}

/// External run controls for cooperative solves (anytime portfolios).
///
/// Unlike [`SolverConfig`] these carry live shared state: an absolute
/// deadline, a stop flag another thread may raise, and an externally
/// published upper bound on the objective. All fields default to "off",
/// and [`solve`] is exactly `solve_with_controls` with the defaults.
#[derive(Debug, Clone, Default)]
pub struct SolveControls {
    /// Absolute wall-clock deadline (checked alongside
    /// `SolverConfig::time_limit`).
    pub deadline: Option<Instant>,
    /// Cooperative stop flag; when raised the solve returns its incumbent
    /// as if a limit had fired.
    pub stop: Option<Arc<AtomicBool>>,
    /// Externally published upper bound on the objective, in the *model's
    /// objective units*, with `u64::MAX` meaning "none yet". Only honoured
    /// for `Direction::Minimize` models: nodes whose relaxation bound
    /// cannot beat it are pruned. The publisher must hold a feasible
    /// solution attaining the bound, or optimality claims become unsound.
    pub upper_bound: Option<Arc<AtomicU64>>,
}

/// Outcome of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal (within `mip_gap`).
    Optimal,
    /// A limit fired; the reported solution is the best incumbent found.
    Feasible,
    /// No feasible solution exists.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// A limit fired before any incumbent was found.
    LimitReached,
}

/// Result of [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct MipSolution {
    /// Solve outcome.
    pub status: SolveStatus,
    /// Objective of the incumbent (when `Optimal`/`Feasible`).
    pub objective: f64,
    /// Variable values of the incumbent (when `Optimal`/`Feasible`).
    pub values: Vec<f64>,
    /// Nodes explored by branch and bound.
    pub nodes_explored: usize,
    /// Best proven bound on the optimum (in the model's direction).
    pub best_bound: f64,
    /// Wall-clock time spent.
    pub wall_time: Duration,
    /// `true` iff the search tree was fully explored (no time/node limit,
    /// stop flag, or early return fired). With an external upper bound in
    /// play, `exhausted` plus a non-`Optimal` status still certifies that
    /// no solution strictly better than that bound exists.
    pub exhausted: bool,
}

impl MipSolution {
    /// The incumbent value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if no incumbent exists or `var` is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// `true` iff an incumbent solution is available.
    pub fn has_solution(&self) -> bool {
        matches!(self.status, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Parent relaxation objective, as a minimize-sense value.
    bound: f64,
}

/// Solves a mixed-integer linear program by branch and bound.
///
/// # Errors
///
/// Returns [`ModelError`] if the model fails validation.
pub fn solve(model: &Model, config: &SolverConfig) -> Result<MipSolution, ModelError> {
    solve_with_controls(model, config, &SolveControls::default())
}

/// [`solve`] with live external controls: deadline, stop flag, and a
/// shared objective upper bound (see [`SolveControls`]).
///
/// # Errors
///
/// Returns [`ModelError`] if the model fails validation.
pub fn solve_with_controls(
    model: &Model,
    config: &SolverConfig,
    controls: &SolveControls,
) -> Result<MipSolution, ModelError> {
    model.validate()?;
    let start = Instant::now();
    let direction = *model.objective().expect("validated").0;
    // Internally compare in minimize sense.
    let sign = match direction {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };

    let int_vars = model.integral_vars();
    let root_lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();

    let mut nodes_explored = 0usize;
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // minimize-sense obj
    let mut root_bound = f64::NEG_INFINITY;
    let mut hit_limit = false;
    let mut external_pruned = false;

    // The external upper bound, as a minimize-sense value (only honoured
    // for minimize models — the portfolio's shared incumbent is A_max).
    let external = || -> f64 {
        match (&controls.upper_bound, direction) {
            (Some(ub), Direction::Minimize) => {
                let b = ub.load(Ordering::Relaxed);
                if b == u64::MAX {
                    f64::INFINITY
                } else {
                    b as f64
                }
            }
            _ => f64::INFINITY,
        }
    };

    let mut stack = vec![Node { lower: root_lower, upper: root_upper, bound: f64::NEG_INFINITY }];

    while let Some(node) = stack.pop() {
        if let Some(limit) = config.time_limit {
            if start.elapsed() >= limit {
                hit_limit = true;
                break;
            }
        }
        if let Some(deadline) = controls.deadline {
            if Instant::now() >= deadline {
                hit_limit = true;
                break;
            }
        }
        if let Some(stop) = &controls.stop {
            if stop.load(Ordering::Relaxed) {
                hit_limit = true;
                break;
            }
        }
        if let Some(limit) = config.node_limit {
            if nodes_explored >= limit {
                hit_limit = true;
                break;
            }
        }
        // Bound-based pruning against the incumbent and the external
        // bound: a node that cannot strictly beat either is dead.
        let own = incumbent.as_ref().map_or(f64::INFINITY, |(best, _)| *best);
        let cutoff = own.min(external());
        if cutoff.is_finite() && node.bound >= cutoff - config.mip_gap * cutoff.abs().max(1.0) {
            if node.bound < own {
                external_pruned = true; // only the external bound cut this node
            }
            continue;
        }
        nodes_explored += 1;
        // One relaxation of a large model can outlast the whole budget, so
        // the deadline/stop pair is polled inside the simplex loop too.
        let lp_stop = || {
            controls.deadline.is_some_and(|d| Instant::now() >= d)
                || controls.stop.as_ref().is_some_and(|s| s.load(Ordering::Relaxed))
                || config.time_limit.is_some_and(|l| start.elapsed() >= l)
        };
        let relax =
            solve_relaxation_interruptible(model, &node.lower, &node.upper, Some(&lp_stop))?;
        match relax.status {
            LpStatus::Interrupted => {
                hit_limit = true;
                break;
            }
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // Unbounded relaxation at the root means an unbounded MIP
                // (for our models integrality never restores boundedness).
                return Ok(MipSolution {
                    status: SolveStatus::Unbounded,
                    objective: 0.0,
                    values: Vec::new(),
                    nodes_explored,
                    best_bound: f64::NEG_INFINITY * sign,
                    wall_time: start.elapsed(),
                    exhausted: false,
                });
            }
            LpStatus::Optimal => {}
        }
        let bound = sign * relax.objective;
        if nodes_explored == 1 {
            root_bound = bound;
        }
        let own = incumbent.as_ref().map_or(f64::INFINITY, |(best, _)| *best);
        let cutoff = own.min(external());
        if cutoff.is_finite() && bound >= cutoff - config.mip_gap * cutoff.abs().max(1.0) {
            if bound < own {
                external_pruned = true;
            }
            continue;
        }
        // Most-fractional branching variable.
        let fractional = int_vars
            .iter()
            .map(|&v| {
                let x = relax.values[v.index()];
                (v, x, (x - x.round()).abs())
            })
            .filter(|&(_, _, frac)| frac > config.integrality_tol)
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));

        match fractional {
            None => {
                // Integer-feasible: snap and accept as incumbent.
                let mut values = relax.values.clone();
                for &v in &int_vars {
                    values[v.index()] = values[v.index()].round();
                }
                if incumbent.as_ref().is_none_or(|(best, _)| bound < *best) {
                    incumbent = Some((bound, values));
                }
            }
            Some((v, x, _)) => {
                let floor = x.floor();
                // Child exploring the "down" branch first is pushed last
                // (DFS pops it first) when its parent relaxation leans down.
                let mut down = Node { lower: node.lower.clone(), upper: node.upper.clone(), bound };
                down.upper[v.index()] = floor;
                let mut up = Node { lower: node.lower, upper: node.upper, bound };
                up.lower[v.index()] = floor + 1.0;
                if x - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    let open_bound = stack
        .iter()
        .map(|n| n.bound)
        .fold(f64::INFINITY, f64::min)
        .min(incumbent.as_ref().map_or(f64::INFINITY, |(b, _)| *b))
        .max(root_bound);
    let wall_time = start.elapsed();
    let exhausted = !hit_limit;
    Ok(match incumbent {
        Some((obj, values)) => MipSolution {
            // The incumbent is proven optimal only when the tree was
            // exhausted *and* the external bound never cut below it (the
            // pruning cutoff was min(incumbent, external) throughout).
            status: if exhausted && obj <= external() + 1e-9 {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            },
            objective: sign * obj,
            values,
            nodes_explored,
            best_bound: sign * open_bound,
            wall_time,
            exhausted,
        },
        None => MipSolution {
            // Exhausting under an external bound proves "nothing strictly
            // better than the bound", not infeasibility.
            status: if hit_limit || external_pruned {
                SolveStatus::LimitReached
            } else {
                SolveStatus::Infeasible
            },
            objective: 0.0,
            values: Vec::new(),
            nodes_explored,
            best_bound: sign * open_bound,
            wall_time,
            exhausted,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    #[test]
    fn knapsack_optimal() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6 -> a + c (17) vs b + c (20).
        let mut m = Model::new("knapsack");
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.add_constraint(
            "w",
            LinExpr::from(a) * 3.0 + LinExpr::from(b) * 4.0 + LinExpr::from(c) * 2.0,
            Sense::Le,
            6.0,
        );
        m.set_objective(
            Direction::Maximize,
            LinExpr::from(a) * 10.0 + LinExpr::from(b) * 13.0 + LinExpr::from(c) * 7.0,
        );
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6, "obj {}", s.objective);
        assert_eq!(s.value(b), 1.0);
        assert_eq!(s.value(c), 1.0);
        assert_eq!(s.value(a), 0.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x <= 5, x integer -> 2 (LP gives 2.5).
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 10.0);
        m.add_constraint("c", LinExpr::from(x) * 2.0, Sense::Le, 5.0);
        m.set_objective(Direction::Maximize, LinExpr::from(x));
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 2.0);
    }

    #[test]
    fn infeasible_mip() {
        // x + y == 1.5 with x, y binary is LP-feasible but IP-infeasible…
        let mut m = Model::new("t");
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_constraint("c", LinExpr::from(x) + LinExpr::from(y), Sense::Eq, 1.5);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
        assert!(!s.has_solution());
    }

    #[test]
    fn equality_assignment() {
        // Assign each of 2 items to exactly one of 2 bins minimizing cost.
        let mut m = Model::new("assign");
        let costs = [[1.0, 9.0], [8.0, 2.0]];
        let mut vars = [[VarId(0); 2]; 2];
        for (i, row) in costs.iter().enumerate() {
            for (j, _) in row.iter().enumerate() {
                vars[i][j] = m.binary(format!("x{i}{j}"));
            }
        }
        for (i, row) in vars.iter().enumerate() {
            m.add_constraint(
                format!("item{i}"),
                LinExpr::from(row[0]) + LinExpr::from(row[1]),
                Sense::Eq,
                1.0,
            );
        }
        let obj = LinExpr::sum(
            vars.iter()
                .enumerate()
                .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, &v)| (v, costs[i][j]))),
        );
        m.set_objective(Direction::Minimize, obj);
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert_eq!(s.value(vars[0][0]), 1.0);
        assert_eq!(s.value(vars[1][1]), 1.0);
    }

    #[test]
    fn minimax_via_epigraph() {
        // min t s.t. t >= x, t >= 3 - x, x in {0..3} -> x in {1, 2}, t = 2.
        let mut m = Model::new("minimax");
        let x = m.integer("x", 0.0, 3.0);
        let t = m.continuous("t", 0.0, f64::INFINITY);
        m.add_constraint("t_ge_x", LinExpr::from(t) - LinExpr::from(x), Sense::Ge, 0.0);
        m.add_constraint("t_ge_3mx", LinExpr::from(t) + LinExpr::from(x), Sense::Ge, 3.0);
        m.set_objective(Direction::Minimize, LinExpr::from(t));
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn node_limit_returns_feasible_or_limit() {
        // A 12-item knapsack with a 1-node budget can't prove optimality.
        let mut m = Model::new("big");
        let vars: Vec<VarId> = (0..12).map(|i| m.binary(format!("x{i}"))).collect();
        let weights: Vec<f64> = (0..12).map(|i| 2.0 + (i as f64 * 1.37) % 5.0).collect();
        let values: Vec<f64> = (0..12).map(|i| 1.0 + (i as f64 * 2.11) % 7.0).collect();
        m.add_constraint(
            "w",
            LinExpr::sum(vars.iter().copied().zip(weights.iter().copied())),
            Sense::Le,
            14.0,
        );
        m.set_objective(
            Direction::Maximize,
            LinExpr::sum(vars.iter().copied().zip(values.iter().copied())),
        );
        let config = SolverConfig { node_limit: Some(1), ..Default::default() };
        let s = solve(&m, &config).unwrap();
        assert!(matches!(s.status, SolveStatus::Feasible | SolveStatus::LimitReached));
        assert!(s.nodes_explored <= 1);

        // With the default budget the same model solves to optimality and
        // the bound closes.
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(s.best_bound >= s.objective - 1e-6);
    }

    #[test]
    fn time_limit_respected() {
        let mut m = Model::new("timed");
        let vars: Vec<VarId> = (0..20).map(|i| m.binary(format!("x{i}"))).collect();
        m.add_constraint("w", LinExpr::sum(vars.iter().map(|&v| (v, 1.0))), Sense::Le, 10.0);
        m.set_objective(Direction::Maximize, LinExpr::sum(vars.iter().map(|&v| (v, 1.0))));
        let config = SolverConfig::with_time_limit(Duration::from_millis(50));
        let s = solve(&m, &config).unwrap();
        assert!(s.wall_time < Duration::from_secs(5));
    }

    /// min x + y over x + y >= 3, x,y integer in [0,5] — optimum 3.
    fn small_min_model() -> Model {
        let mut m = Model::new("min3");
        let x = m.integer("x", 0.0, 5.0);
        let y = m.integer("y", 0.0, 5.0);
        m.add_constraint("c", LinExpr::from(x) + LinExpr::from(y), Sense::Ge, 3.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x) + LinExpr::from(y));
        m
    }

    #[test]
    fn stop_flag_halts_the_search() {
        let m = small_min_model();
        let stop = Arc::new(AtomicBool::new(true));
        let controls = SolveControls { stop: Some(Arc::clone(&stop)), ..Default::default() };
        let s = solve_with_controls(&m, &SolverConfig::default(), &controls).unwrap();
        assert_eq!(s.status, SolveStatus::LimitReached);
        assert!(!s.exhausted);
        assert_eq!(s.nodes_explored, 0);
    }

    #[test]
    fn external_bound_at_the_optimum_cuts_everything() {
        // Publishing the known optimum (3) means no node can strictly
        // beat it: the solve exhausts with no incumbent and must NOT
        // claim infeasibility.
        let m = small_min_model();
        let bound = Arc::new(AtomicU64::new(3));
        let controls = SolveControls { upper_bound: Some(bound), ..Default::default() };
        let s = solve_with_controls(&m, &SolverConfig::default(), &controls).unwrap();
        assert_eq!(s.status, SolveStatus::LimitReached);
        assert!(s.exhausted, "tree fully explored under the bound");
        assert!(!s.has_solution());
    }

    #[test]
    fn loose_external_bound_keeps_optimality() {
        let m = small_min_model();
        let bound = Arc::new(AtomicU64::new(100));
        let controls = SolveControls { upper_bound: Some(bound), ..Default::default() };
        let s = solve_with_controls(&m, &SolverConfig::default(), &controls).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn controls_deadline_in_the_past_returns_limit() {
        let m = small_min_model();
        let controls = SolveControls {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        let s = solve_with_controls(&m, &SolverConfig::default(), &controls).unwrap();
        assert_eq!(s.status, SolveStatus::LimitReached);
        assert!(!s.exhausted);
    }

    #[test]
    fn unbounded_mip() {
        let mut m = Model::new("u");
        let x = m.integer("x", 0.0, f64::INFINITY);
        m.set_objective(Direction::Maximize, LinExpr::from(x));
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn maximize_and_minimize_agree() {
        // min -x == -(max x).
        let mut m1 = Model::new("min");
        let x1 = m1.integer("x", 0.0, 7.0);
        m1.add_constraint("c", LinExpr::from(x1) * 3.0, Sense::Le, 10.0);
        m1.set_objective(Direction::Minimize, -LinExpr::from(x1));
        let s1 = solve(&m1, &SolverConfig::default()).unwrap();

        let mut m2 = Model::new("max");
        let x2 = m2.integer("x", 0.0, 7.0);
        m2.add_constraint("c", LinExpr::from(x2) * 3.0, Sense::Le, 10.0);
        m2.set_objective(Direction::Maximize, LinExpr::from(x2));
        let s2 = solve(&m2, &SolverConfig::default()).unwrap();

        assert_eq!(s1.objective, -s2.objective);
        assert_eq!(s2.objective, 3.0);
    }

    #[test]
    fn bin_packing_small() {
        // 4 items of sizes 5,4,3,2 into bins of 7: optimum 2 bins.
        let sizes = [5.0, 4.0, 3.0, 2.0];
        let bins = 3usize;
        let mut m = Model::new("binpack");
        let y: Vec<VarId> = (0..bins).map(|b| m.binary(format!("y{b}"))).collect();
        let mut x = vec![vec![VarId(0); bins]; sizes.len()];
        for (i, xi) in x.iter_mut().enumerate() {
            for (b, xb) in xi.iter_mut().enumerate() {
                *xb = m.binary(format!("x{i}_{b}"));
            }
        }
        for (i, xi) in x.iter().enumerate() {
            m.add_constraint(
                format!("place{i}"),
                LinExpr::sum(xi.iter().map(|&v| (v, 1.0))),
                Sense::Eq,
                1.0,
            );
        }
        for b in 0..bins {
            let load = LinExpr::sum(x.iter().enumerate().map(|(i, xi)| (xi[b], sizes[i])));
            m.add_constraint(format!("cap{b}"), load - LinExpr::from(y[b]) * 7.0, Sense::Le, 0.0);
        }
        m.set_objective(Direction::Minimize, LinExpr::sum(y.iter().map(|&v| (v, 1.0))));
        let s = solve(&m, &SolverConfig::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 2.0);
    }
}
