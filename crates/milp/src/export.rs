//! Model export in CPLEX LP format.
//!
//! Lets any model built against this crate be dumped and fed to an
//! external solver (Gurobi, CBC, HiGHS) for cross-checking — the natural
//! escape hatch for a from-scratch solver.

use crate::model::{Direction, LinExpr, Model, Sense, VarKind};
use std::fmt::Write as _;

fn term_string(model: &Model, expr: &LinExpr) -> String {
    let mut out = String::new();
    let mut first = true;
    for (v, c) in expr.terms() {
        let name = &model.variables()[v.index()].name;
        if first {
            if c < 0.0 {
                let _ = write!(out, "- {} {}", fmt_coeff(-c), name);
            } else {
                let _ = write!(out, "{} {}", fmt_coeff(c), name);
            }
            first = false;
        } else if c < 0.0 {
            let _ = write!(out, " - {} {}", fmt_coeff(-c), name);
        } else {
            let _ = write!(out, " + {} {}", fmt_coeff(c), name);
        }
    }
    if first {
        out.push('0');
    }
    out
}

fn fmt_coeff(c: f64) -> String {
    if (c - c.round()).abs() < 1e-12 {
        format!("{}", c.round() as i64)
    } else {
        format!("{c}")
    }
}

/// Serializes the model in LP format.
///
/// The objective's constant term is dropped (LP format has no slot for
/// it); everything else round-trips losslessly through external tools.
pub fn write_lp(model: &Model) -> String {
    let mut out = String::new();
    let (direction, objective) = model
        .objective()
        .map(|(d, e)| (*d, e.clone()))
        .unwrap_or((Direction::Minimize, LinExpr::new()));
    out.push_str(match direction {
        Direction::Minimize => "Minimize\n",
        Direction::Maximize => "Maximize\n",
    });
    let _ = writeln!(out, " obj: {}", term_string(model, &objective));

    out.push_str("Subject To\n");
    for (i, c) in model.constraints().iter().enumerate() {
        let sense = match c.sense {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        };
        let rhs = c.rhs - c.expr.constant();
        let _ =
            writeln!(out, " c{}: {} {} {}", i, term_string(model, &c.expr), sense, fmt_coeff(rhs));
    }

    out.push_str("Bounds\n");
    for v in model.variables() {
        match (v.lower, v.upper.is_finite()) {
            (l, true) => {
                let _ = writeln!(out, " {} <= {} <= {}", fmt_coeff(l), v.name, fmt_coeff(v.upper));
            }
            (l, false) => {
                let _ = writeln!(out, " {} <= {}", fmt_coeff(l), v.name);
            }
        }
    }

    let binaries: Vec<&str> = model
        .variables()
        .iter()
        .filter(|v| v.kind == VarKind::Binary)
        .map(|v| v.name.as_str())
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binary\n");
        for b in binaries {
            let _ = writeln!(out, " {b}");
        }
    }
    let integers: Vec<&str> = model
        .variables()
        .iter()
        .filter(|v| v.kind == VarKind::Integer)
        .map(|v| v.name.as_str())
        .collect();
    if !integers.is_empty() {
        out.push_str("General\n");
        for i in integers {
            let _ = writeln!(out, " {i}");
        }
    }
    out.push_str("End\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn sample() -> Model {
        let mut m = Model::new("sample");
        let x = m.binary("x");
        let y = m.integer("y", 0.0, 7.0);
        let z = m.continuous("z", 1.0, f64::INFINITY);
        m.add_constraint(
            "c",
            LinExpr::from(x) * 3.0 + LinExpr::from(y) - LinExpr::from(z) * 0.5,
            Sense::Le,
            6.0,
        );
        m.set_objective(Direction::Maximize, LinExpr::from(x) * 10.0 + LinExpr::from(y));
        m
    }

    #[test]
    fn lp_sections_present() {
        let lp = write_lp(&sample());
        for section in ["Maximize", "Subject To", "Bounds", "Binary", "General", "End"] {
            assert!(lp.contains(section), "missing {section} in:\n{lp}");
        }
        assert!(lp.contains("3 x + 1 y - 0.5 z <= 6"));
        assert!(lp.contains("10 x + 1 y"));
        assert!(lp.contains("0 <= y <= 7"));
        assert!(lp.contains("1 <= z\n"));
    }

    #[test]
    fn constraint_constant_folded_into_rhs() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        m.add_constraint("c", LinExpr::from(x) + 2.0, Sense::Le, 5.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        let lp = write_lp(&m);
        assert!(lp.contains("1 x <= 3"), "{lp}");
    }

    #[test]
    fn empty_expression_prints_zero() {
        let mut m = Model::new("t");
        let _ = m.binary("x");
        m.add_constraint("c", LinExpr::new(), Sense::Le, 1.0);
        m.set_objective(Direction::Minimize, LinExpr::new());
        let lp = write_lp(&m);
        assert!(lp.contains("obj: 0"));
        assert!(lp.contains("c0: 0 <= 1"));
    }

    #[test]
    fn leading_negative_coefficient() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        m.set_objective(Direction::Minimize, -LinExpr::from(x));
        let lp = write_lp(&m);
        assert!(lp.contains("obj: - 1 x"), "{lp}");
    }
}
