//! Two-phase primal simplex on a dense tableau.
//!
//! Solves the LP relaxation of a [`Model`] with per-call bound overrides
//! (branch and bound tightens bounds without rebuilding the model). The
//! implementation favours clarity and robustness over speed: a dense
//! tableau, a Dantzig pivot rule with a Bland fallback to guarantee
//! termination, and explicit artificial variables for phase 1.

use crate::model::{Direction, Model, ModelError, Sense};

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The solve was interrupted by its stop callback before convergence;
    /// no result fields are meaningful.
    Interrupted,
}

/// Result of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpResult {
    /// Solve outcome.
    pub status: LpStatus,
    /// Objective value in the *original* direction (meaningful only when
    /// `status == Optimal`).
    pub objective: f64,
    /// Values of the model's variables (original space; meaningful only
    /// when `status == Optimal`).
    pub values: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Upper bound on dense tableau cells (~1 GiB of f64s). Models beyond it
/// fail fast with [`ModelError::TooLarge`] instead of exhausting memory.
const MAX_TABLEAU_CELLS: usize = 128 * 1024 * 1024;

/// Solves the LP relaxation of `model` with the given bound overrides
/// (`lower`/`upper` replace the variables' declared bounds; integrality is
/// ignored).
///
/// # Errors
///
/// Returns [`ModelError`] if the model fails validation or an overridden
/// lower bound is not finite.
pub fn solve_relaxation(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
) -> Result<LpResult, ModelError> {
    solve_relaxation_interruptible(model, lower, upper, None)
}

/// [`solve_relaxation`] with a cooperative stop callback, polled once per
/// simplex iteration. A single relaxation of a large model can run for
/// seconds, so deadline-honouring callers (the branch-and-bound under a
/// [`crate::SolveControls`] deadline) must be able to interrupt *inside*
/// the pivot loop, not just between tree nodes. When the callback fires
/// the result carries [`LpStatus::Interrupted`].
///
/// # Errors
///
/// Returns [`ModelError`] if the model fails validation or an overridden
/// lower bound is not finite.
pub fn solve_relaxation_interruptible(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    stop: Option<&dyn Fn() -> bool>,
) -> Result<LpResult, ModelError> {
    model.validate()?;
    let n = model.variables().len();
    assert_eq!(lower.len(), n, "bound override length mismatch");
    assert_eq!(upper.len(), n, "bound override length mismatch");

    for (i, v) in model.variables().iter().enumerate() {
        if !lower[i].is_finite() {
            return Err(ModelError::BadBounds { variable: v.name.clone() });
        }
        if lower[i] > upper[i] + EPS {
            // Branching produced an empty box: trivially infeasible.
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
            });
        }
    }

    // --- Standard-form conversion ------------------------------------
    // Substitute x_j = x'_j + lower_j with x'_j >= 0; finite upper bounds
    // become explicit rows x'_j <= upper_j - lower_j.
    #[derive(Clone)]
    struct Row {
        coeffs: Vec<f64>, // length n (structural variables only)
        sense: Sense,
        rhs: f64,
    }

    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints().len() + n);
    for c in model.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for (v, a) in c.expr.terms() {
            coeffs[v.index()] = a;
            shift += a * lower[v.index()];
        }
        rows.push(Row { coeffs, sense: c.sense, rhs: c.rhs - c.expr.constant() - shift });
    }
    for j in 0..n {
        if upper[j].is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            rows.push(Row { coeffs, sense: Sense::Le, rhs: upper[j] - lower[j] });
        }
    }

    // Objective: minimize c'x' (+ constant collected separately).
    let (direction, obj_expr) = {
        let (d, e) = model.objective().expect("validated");
        (*d, e.clone())
    };
    let mut costs = vec![0.0; n];
    let mut obj_offset = obj_expr.constant();
    for (v, a) in obj_expr.terms() {
        costs[v.index()] = a;
        obj_offset += a * lower[v.index()];
    }
    let maximize = direction == Direction::Maximize;
    if maximize {
        for c in &mut costs {
            *c = -*c;
        }
        obj_offset = -obj_offset;
    }

    // Normalize rhs >= 0, attach slack/surplus/artificial columns.
    let m = rows.len();
    let mut slack_count = 0usize;
    for r in &mut rows {
        if r.rhs < 0.0 {
            for c in &mut r.coeffs {
                *c = -*c;
            }
            r.rhs = -r.rhs;
            r.sense = match r.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
        if !matches!(r.sense, Sense::Eq) {
            slack_count += 1;
        }
    }

    // Column layout: [structural n][slack/surplus][artificial][rhs].
    let total_cols = n + slack_count + m; // artificial upper bound: one per row
    let cells = m.saturating_mul(total_cols + 1);
    if cells > MAX_TABLEAU_CELLS {
        return Err(ModelError::TooLarge { cells });
    }
    let mut tab = vec![vec![0.0; total_cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut artificial_cols: Vec<usize> = Vec::new();
    let mut next_slack = n;
    let mut next_art = n + slack_count;

    for (i, r) in rows.iter().enumerate() {
        tab[i][..n].copy_from_slice(&r.coeffs);
        tab[i][total_cols] = r.rhs;
        match r.sense {
            Sense::Le => {
                tab[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Sense::Ge => {
                tab[i][next_slack] = -1.0;
                next_slack += 1;
                tab[i][next_art] = 1.0;
                basis[i] = next_art;
                artificial_cols.push(next_art);
                next_art += 1;
            }
            Sense::Eq => {
                tab[i][next_art] = 1.0;
                basis[i] = next_art;
                artificial_cols.push(next_art);
                next_art += 1;
            }
        }
    }
    let used_cols = next_art;

    // --- Phase 1: minimize sum of artificials -------------------------
    if !artificial_cols.is_empty() {
        let mut phase1 = vec![0.0; used_cols];
        for &a in &artificial_cols {
            phase1[a] = 1.0;
        }
        let end = run_simplex(&mut tab, &mut basis, &phase1, used_cols, total_cols, stop);
        if end == SimplexEnd::Interrupted {
            return Ok(LpResult {
                status: LpStatus::Interrupted,
                objective: 0.0,
                values: Vec::new(),
            });
        }
        let phase1_obj = current_objective(&tab, &basis, &phase1, total_cols);
        if end == SimplexEnd::Unbounded || phase1_obj > 1e-6 {
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
            });
        }
        // Pivot any residual artificial out of the basis (degenerate rows).
        for i in 0..m {
            if artificial_cols.contains(&basis[i]) {
                let pivot_col = (0..n + slack_count)
                    .find(|&j| tab[i][j].abs() > EPS && !artificial_cols.contains(&j));
                if let Some(j) = pivot_col {
                    pivot(&mut tab, &mut basis, i, j, total_cols);
                }
                // If no pivot exists the row is all-zero: harmless.
            }
        }
    }

    // --- Phase 2: minimize real costs ---------------------------------
    let mut phase2 = vec![0.0; used_cols];
    phase2[..n].copy_from_slice(&costs);
    // Forbid artificials from re-entering by pricing them prohibitively.
    for &a in &artificial_cols {
        phase2[a] = 1e30;
    }
    match run_simplex(&mut tab, &mut basis, &phase2, used_cols, total_cols, stop) {
        SimplexEnd::Interrupted => {
            return Ok(LpResult {
                status: LpStatus::Interrupted,
                objective: 0.0,
                values: Vec::new(),
            });
        }
        SimplexEnd::Unbounded => {
            return Ok(LpResult {
                status: LpStatus::Unbounded,
                objective: 0.0,
                values: Vec::new(),
            });
        }
        SimplexEnd::Optimal => {}
    }

    // Extract solution in original variable space.
    let mut shifted = vec![0.0; used_cols];
    for i in 0..m {
        if basis[i] != usize::MAX {
            shifted[basis[i]] = tab[i][total_cols];
        }
    }
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = shifted[j] + lower[j];
    }
    let raw_obj: f64 = (0..n).map(|j| costs[j] * shifted[j]).sum::<f64>() + obj_offset;
    let objective = if maximize { -raw_obj } else { raw_obj };
    Ok(LpResult { status: LpStatus::Optimal, objective, values })
}

/// How a phase of the simplex loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimplexEnd {
    /// No entering column remains (or the iteration valve tripped).
    Optimal,
    /// The problem is unbounded in the current phase.
    Unbounded,
    /// The stop callback fired mid-loop.
    Interrupted,
}

/// Runs the simplex loop minimizing `costs`, polling `stop` each iteration
/// (one pivot costs O(rows × cols) — vastly more than the callback).
fn run_simplex(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    costs: &[f64],
    used_cols: usize,
    rhs_col: usize,
    stop: Option<&dyn Fn() -> bool>,
) -> SimplexEnd {
    let m = tab.len();
    let max_iters = 50 * (m + used_cols).max(100);
    let bland_after = 10 * (m + used_cols).max(50);
    for iter in 0..max_iters {
        if stop.is_some_and(|s| s()) {
            return SimplexEnd::Interrupted;
        }
        // Reduced costs: c_j - c_B B^-1 A_j, computed from the tableau form.
        let mut entering = None;
        let mut best = -1e-7; // entering needs a meaningfully negative reduced cost
        for j in 0..used_cols {
            let mut reduced = costs[j];
            for i in 0..m {
                if basis[i] != usize::MAX {
                    reduced -= costs[basis[i]] * tab[i][j];
                }
            }
            if reduced < best {
                if iter >= bland_after {
                    // Bland: first eligible column.
                    entering = Some(j);
                    break;
                }
                best = reduced;
                entering = Some(j);
            }
        }
        let Some(col) = entering else {
            return SimplexEnd::Optimal;
        };
        // Ratio test.
        let mut leaving = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if tab[i][col] > EPS {
                let ratio = tab[i][rhs_col] / tab[i][col];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.is_some_and(|l: usize| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return SimplexEnd::Unbounded;
        };
        pivot(tab, basis, row, col, rhs_col);
    }
    // Iteration safety valve: treat as converged (best effort).
    SimplexEnd::Optimal
}

#[allow(clippy::needless_range_loop)] // dense-tableau row ops read and write `tab` by column index
fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, rhs_col: usize) {
    let m = tab.len();
    let p = tab[row][col];
    debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
    for j in 0..=rhs_col {
        tab[row][j] /= p;
    }
    for i in 0..m {
        if i != row && tab[i][col].abs() > EPS {
            let factor = tab[i][col];
            for j in 0..=rhs_col {
                tab[i][j] -= factor * tab[row][j];
            }
        }
    }
    basis[row] = col;
}

fn current_objective(tab: &[Vec<f64>], basis: &[usize], costs: &[f64], rhs_col: usize) -> f64 {
    basis
        .iter()
        .enumerate()
        .filter(|(_, &b)| b != usize::MAX)
        .map(|(i, &b)| costs[b] * tab[i][rhs_col])
        .sum()
}

/// Convenience: solve the relaxation with the model's own bounds.
///
/// # Errors
///
/// Returns [`ModelError`] if the model fails validation.
pub fn solve_lp(model: &Model) -> Result<LpResult, ModelError> {
    let lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();
    solve_relaxation(model, &lower, &upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Direction, LinExpr, Model, Sense};

    #[test]
    fn maximize_2d_lp() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0), obj 12.
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint("c2", LinExpr::from(x) + LinExpr::from(y) * 3.0, Sense::Le, 6.0);
        m.set_objective(Direction::Maximize, LinExpr::from(x) * 3.0 + LinExpr::from(y) * 2.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 12.0).abs() < 1e-6, "obj {}", r.objective);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!(r.values[1].abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2), obj 2.8.
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", LinExpr::from(x) + LinExpr::from(y) * 2.0, Sense::Ge, 4.0);
        m.add_constraint("c2", LinExpr::from(x) * 3.0 + LinExpr::from(y), Sense::Ge, 6.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x) + LinExpr::from(y));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 2.8).abs() < 1e-6, "obj {}", r.objective);
    }

    #[test]
    fn equality_constraint() {
        // min x s.t. x + y == 5, y <= 3 -> x = 2.
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, 3.0);
        m.add_constraint("c", LinExpr::from(x) + LinExpr::from(y), Sense::Eq, 5.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Sense::Ge, 2.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.set_objective(Direction::Maximize, LinExpr::from(x));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x, x in [2, 9] -> 2.
        let mut m = Model::new("lp");
        let x = m.continuous("x", 2.0, 9.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 2.0).abs() < 1e-9);
        assert!((r.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bound_overrides_respected() {
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, 10.0);
        m.set_objective(Direction::Maximize, LinExpr::from(x));
        let r = solve_relaxation(&m, &[0.0], &[3.5]).unwrap();
        assert!((r.objective - 3.5).abs() < 1e-9);
        // Empty box -> infeasible.
        let r = solve_relaxation(&m, &[4.0], &[3.0]).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, 1.0);
        m.set_objective(Direction::Minimize, LinExpr::from(x) + 10.0);
        let r = solve_lp(&m).unwrap();
        assert!((r.objective - 10.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // min y s.t. -x - y <= -3 (i.e. x + y >= 3), x <= 1 -> y = 2.
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, 1.0);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c", -(LinExpr::from(x) + LinExpr::from(y)), Sense::Le, -3.0);
        m.set_objective(Direction::Minimize, LinExpr::from(y));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[1] - 2.0).abs() < 1e-6, "y = {}", r.values[1]);
    }

    #[test]
    fn stop_callback_interrupts_the_pivot_loop() {
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.set_objective(Direction::Maximize, LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let stop = || true;
        let r =
            solve_relaxation_interruptible(&m, &[0.0, 0.0], &[10.0, 10.0], Some(&stop)).unwrap();
        assert_eq!(r.status, LpStatus::Interrupted);
        assert!(r.values.is_empty());
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        for i in 0..6 {
            m.add_constraint(
                format!("c{i}"),
                LinExpr::from(x) + LinExpr::from(y) * (1.0 + i as f64 * 1e-9),
                Sense::Le,
                2.0,
            );
        }
        m.set_objective(Direction::Maximize, LinExpr::from(x) + LinExpr::from(y));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 2.0).abs() < 1e-5);
    }
}
