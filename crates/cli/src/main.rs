//! The `hermes` command-line tool. See [`hermes_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{}", hermes_cli::USAGE);
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let options = match hermes_cli::parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = hermes_cli::run(&options, &mut std::io::stdout()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
