//! Library backing the `hermes` command-line tool.
//!
//! Everything testable lives here: argument parsing, topology-spec
//! parsing, algorithm lookup, and the six commands (`analyze`, `audit`,
//! `deploy`, `simulate`, `chaos`, `migrate`). `main.rs` is a thin shell
//! around [`run`].
//!
//! User-supplied values (`--channel`, `--solver`, `--order`, numbers)
//! parse into typed errors — [`ChannelSpecError`], [`UnknownSolverError`],
//! [`OrderSpecError`] — at argument-parse time where possible; nothing on
//! the input path unwraps (`clippy.toml` disallows `unwrap`/`expect` in
//! this crate outside tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hermes_backend::config::generate;
use hermes_backend::simulate::{simulate_plan, PlanFlowConfig};
use hermes_baselines::{FirstFitByLevel, FirstFitByLevelAndSize, IlpBaseline, IlpConfig, Sonata};
use hermes_core::{
    explain, verify, Budgeted, DeploymentAlgorithm, Epsilon, GreedyHeuristic, IncrementalDeployer,
    MigrationOrder, MigrationProblem, MigrationScheduler, MilpHermes, OptimalSolver, Portfolio,
    ProgramAnalyzer, RedeployOptions, SearchContext,
};
use hermes_dataplane::lint::lint_composition;
use hermes_dataplane::parser::parse_programs;
use hermes_net::topology::{self, WanConfig};
use hermes_net::{builtin_targets, parse_target, Network, SwitchId, TargetSpecError};
use hermes_runtime::{
    replay_bytes, ChannelProfile, DeploymentRuntime, Event, FaultInjector, FaultProfile, InFlight,
    Journal, MigrationConfig, RecoveredIntent, RetryPolicy, RolloutOutcome,
};
use std::fmt;
use std::time::Duration;

/// A CLI usage or execution error.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parses a topology spec: `linear:N`, `star:N`, `fattree:K`, `wan:I`
/// (Table III index, 1-based), or `waxman:N,ALPHA,BETA,SEED`.
///
/// # Errors
///
/// Returns [`CliError`] on malformed specs.
pub fn parse_topology(spec: &str) -> Result<Network, CliError> {
    let (kind, args) = spec
        .split_once(':')
        .ok_or_else(|| err(format!("topology `{spec}` must look like `linear:3` or `wan:10`")))?;
    let int = |s: &str| -> Result<usize, CliError> {
        s.parse().map_err(|_| err(format!("`{s}` is not a number in `{spec}`")))
    };
    match kind {
        "linear" => Ok(topology::linear(int(args)?.max(1), 10.0)),
        "star" => Ok(topology::star(int(args)?.max(1), 10.0)),
        "fattree" => {
            let k = int(args)?;
            if k < 2 || k % 2 != 0 {
                return Err(err("fat-tree arity must be even and >= 2"));
            }
            Ok(topology::fat_tree(k, 10.0))
        }
        "wan" => {
            let i = int(args)?;
            if !(1..=10).contains(&i) {
                return Err(err("wan index must be 1..=10 (Table III)"));
            }
            Ok(topology::table3_wan(i - 1))
        }
        "waxman" => {
            let parts: Vec<&str> = args.split(',').collect();
            if parts.len() != 4 {
                return Err(err("waxman spec is `waxman:N,ALPHA,BETA,SEED`"));
            }
            let n = int(parts[0])?;
            let alpha: f64 = parts[1].parse().map_err(|_| err("bad alpha"))?;
            let beta: f64 = parts[2].parse().map_err(|_| err("bad beta"))?;
            let seed: u64 = parts[3].parse().map_err(|_| err("bad seed"))?;
            if !(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0) {
                return Err(err("alpha/beta must be in (0, 1]"));
            }
            Ok(topology::waxman(n.max(1), alpha, beta, seed, &WanConfig::default()))
        }
        other => Err(err(format!("unknown topology kind `{other}`"))),
    }
}

/// `--channel` got a malformed or out-of-range spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpecError {
    /// The rejected spec, as given.
    pub spec: String,
    /// What is wrong with it.
    pub detail: String,
}

impl fmt::Display for ChannelSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel spec `{}`: {}", self.spec, self.detail)
    }
}

impl std::error::Error for ChannelSpecError {}

impl From<ChannelSpecError> for CliError {
    fn from(e: ChannelSpecError) -> Self {
        CliError(e.to_string())
    }
}

impl From<TargetSpecError> for CliError {
    fn from(e: TargetSpecError) -> Self {
        CliError(e.to_string())
    }
}

/// Parses the topology spec and retargets its programmable switches per
/// `--target`, when given. The flag is a no-op for topologies with no
/// programmable switch.
fn parse_network(options: &Options) -> Result<Network, CliError> {
    let mut net = parse_topology(&options.topology)?;
    if let Some(spec) = &options.target {
        parse_target(spec)?.apply(&mut net);
    }
    Ok(net)
}

/// Parses a control-channel spec: `none`, `lossy`, or comma-separated
/// knobs `drop=P,dup=P,reorder=P,delay=P,span=US` (omitted knobs stay 0;
/// `span` is the max extra delay in microseconds).
///
/// # Errors
///
/// Returns [`ChannelSpecError`] on malformed specs or out-of-range
/// probabilities.
pub fn parse_channel(spec: &str) -> Result<ChannelProfile, ChannelSpecError> {
    let bad = |detail: String| ChannelSpecError { spec: spec.to_owned(), detail };
    match spec {
        "none" => return Ok(ChannelProfile::none()),
        "lossy" => return Ok(ChannelProfile::lossy()),
        _ => {}
    }
    let mut profile = ChannelProfile::none();
    for part in spec.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| bad(format!("`{part}` is not `key=value` (or use none/lossy)")))?;
        let num: f64 = value
            .parse()
            .map_err(|_| bad(format!("knob `{key}` needs a number, got `{value}`")))?;
        match key {
            "drop" => profile.drop_prob = num,
            "dup" | "duplicate" => profile.duplicate_prob = num,
            "reorder" => profile.reorder_prob = num,
            "delay" => profile.delay_prob = num,
            "span" => profile.delay_span_us = num as u64,
            other => {
                return Err(bad(format!(
                    "unknown knob `{other}` (drop, dup, reorder, delay, span)"
                )))
            }
        }
    }
    profile.validate().map_err(|e| bad(e.to_string()))?;
    Ok(profile)
}

/// `--order` got a malformed migration-order spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderSpecError {
    /// The rejected spec, as given.
    pub given: String,
    /// What is wrong with it.
    pub detail: String,
}

impl fmt::Display for OrderSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "order spec `{}`: {}", self.given, self.detail)
    }
}

impl std::error::Error for OrderSpecError {}

impl From<OrderSpecError> for CliError {
    fn from(e: OrderSpecError) -> Self {
        CliError(e.to_string())
    }
}

/// A syntactically valid `--order` value, before switch indices are
/// resolved against a concrete topology (see [`resolve_order`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderSpec {
    /// Race the planners, pick the lowest-peak schedule.
    Auto,
    /// Greedy lowest-next-peak ordering only.
    Greedy,
    /// Exhaustive lowest-peak search only.
    Exact,
    /// Ascending switch-id order (what an all-at-once rollout commits).
    InOrder,
    /// An explicit step order, as 0-based switch indices.
    Explicit(Vec<usize>),
}

/// Parses a `--order` spec: `auto`, `greedy`, `exact`, `in-order`, or a
/// comma-separated list of 0-based switch indices giving the step order
/// explicitly.
///
/// # Errors
///
/// Returns [`OrderSpecError`] on anything else; index range checks happen
/// later in [`resolve_order`] once the topology is known.
pub fn parse_order(spec: &str) -> Result<OrderSpec, OrderSpecError> {
    match spec {
        "auto" => return Ok(OrderSpec::Auto),
        "greedy" => return Ok(OrderSpec::Greedy),
        "exact" => return Ok(OrderSpec::Exact),
        "in-order" | "inorder" => return Ok(OrderSpec::InOrder),
        _ => {}
    }
    let mut indices = Vec::new();
    for part in spec.split(',') {
        let idx: usize = part.trim().parse().map_err(|_| OrderSpecError {
            given: spec.to_owned(),
            detail: format!(
                "`{part}` is not a switch index (use auto, greedy, exact, in-order, or \
                 comma-separated indices)"
            ),
        })?;
        if indices.contains(&idx) {
            return Err(OrderSpecError {
                given: spec.to_owned(),
                detail: format!("switch index {idx} appears twice"),
            });
        }
        indices.push(idx);
    }
    Ok(OrderSpec::Explicit(indices))
}

/// Resolves a parsed [`OrderSpec`] against a topology, range-checking
/// explicit switch indices.
///
/// # Errors
///
/// Returns [`OrderSpecError`] when an explicit index is out of range.
pub fn resolve_order(spec: &OrderSpec, net: &Network) -> Result<MigrationOrder, OrderSpecError> {
    let indices = match spec {
        OrderSpec::Auto => return Ok(MigrationOrder::Auto),
        OrderSpec::Greedy => return Ok(MigrationOrder::Greedy),
        OrderSpec::Exact => return Ok(MigrationOrder::Exact),
        OrderSpec::InOrder => return Ok(MigrationOrder::InOrder),
        OrderSpec::Explicit(indices) => indices,
    };
    let ids: Vec<SwitchId> = net.switch_ids().collect();
    let mut order = Vec::with_capacity(indices.len());
    for &idx in indices {
        order.push(*ids.get(idx).ok_or_else(|| OrderSpecError {
            given: indices.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
            detail: format!(
                "switch index {idx} is out of range (the topology has {} switches)",
                ids.len()
            ),
        })?);
    }
    Ok(MigrationOrder::Explicit(order))
}

/// The valid `--solver` names, in display order. Aliases (`hermes`,
/// `optimal`, `ilp`, `min-stage`, `flightplan`) are accepted but not
/// listed.
pub const SOLVER_NAMES: &[&str] = &[
    "greedy",
    "exact",
    "milp",
    "portfolio",
    "ffl",
    "ffls",
    "ms",
    "sonata",
    "speed",
    "mtp",
    "fp",
    "p4all",
];

/// `--solver` got a name outside the valid set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSolverError {
    /// The rejected name, as given.
    pub given: String,
}

impl fmt::Display for UnknownSolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown solver `{}` (valid: {})", self.given, SOLVER_NAMES.join(", "))
    }
}

impl std::error::Error for UnknownSolverError {}

impl From<UnknownSolverError> for CliError {
    fn from(e: UnknownSolverError) -> Self {
        CliError(e.to_string())
    }
}

/// Looks a solver up by `--solver` name; every returned solver's budget
/// flows through a `SearchContext` built from `time_limit`.
///
/// # Errors
///
/// Returns [`UnknownSolverError`] listing the valid set on unknown names.
pub fn solver(
    name: &str,
    time_limit: Duration,
) -> Result<Box<dyn DeploymentAlgorithm>, UnknownSolverError> {
    solver_with_threads(name, time_limit, None)
}

/// Like [`solver`], but also stamps a worker budget for parallel searches
/// onto the returned solver's [`SearchContext`] (`None` = available
/// parallelism). Single-threaded solvers ignore the budget.
///
/// # Errors
///
/// Returns [`UnknownSolverError`] listing the valid set on unknown names.
pub fn solver_with_threads(
    name: &str,
    time_limit: Duration,
    threads: Option<std::num::NonZeroUsize>,
) -> Result<Box<dyn DeploymentAlgorithm>, UnknownSolverError> {
    let config = IlpConfig { time_limit, ..Default::default() };
    Ok(match name.to_ascii_lowercase().as_str() {
        "greedy" | "hermes" => Box::new(GreedyHeuristic::new()),
        "exact" | "optimal" => {
            Box::new(Budgeted::new(OptimalSolver::default(), time_limit).with_threads(threads))
        }
        "milp" | "ilp" => Box::new(Budgeted::new(MilpHermes::default(), time_limit)),
        "portfolio" => {
            Box::new(Budgeted::new(Portfolio::greedy_exact(), time_limit).with_threads(threads))
        }
        "ffl" => Box::new(FirstFitByLevel),
        "ffls" => Box::new(FirstFitByLevelAndSize),
        "ms" | "min-stage" => Box::new(IlpBaseline::min_stage(config)),
        "sonata" => Box::new(Sonata::new(config)),
        "speed" => Box::new(IlpBaseline::speed(config)),
        "mtp" => Box::new(IlpBaseline::mtp(config)),
        "fp" | "flightplan" => Box::new(IlpBaseline::flightplan(config)),
        "p4all" => Box::new(IlpBaseline::p4all(config)),
        other => return Err(UnknownSolverError { given: other.to_owned() }),
    })
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand: analyze | audit | deploy | simulate | chaos.
    pub command: String,
    /// Program source files.
    pub files: Vec<String>,
    /// Topology spec (deploy/simulate).
    pub topology: String,
    /// Solver name (see [`SOLVER_NAMES`]).
    pub solver: String,
    /// ε₁ in microseconds.
    pub eps1: f64,
    /// ε₂.
    pub eps2: usize,
    /// Solver time limit in seconds.
    pub time_limit_secs: u64,
    /// Worker budget for the parallel exact search (deploy). `None` =
    /// all available cores.
    pub threads: Option<std::num::NonZeroUsize>,
    /// Emit Graphviz dot (analyze).
    pub dot: bool,
    /// Emit JSON artifacts (deploy) or the event log (chaos).
    pub json: bool,
    /// Fault-injection seed (chaos).
    pub seed: u64,
    /// Sweep seeds `0..N` instead of one run (chaos).
    pub trials: Option<u64>,
    /// Control-channel spec (chaos): `none`, `lossy`, or `k=v` pairs.
    pub channel: String,
    /// Audit the built-in library programs (audit); program files become
    /// optional and are appended to the workload.
    pub library: bool,
    /// Solver producing the starting plan A (migrate).
    pub from_solver: String,
    /// Migration step-order spec (migrate): auto | greedy | exact |
    /// in-order | comma-separated switch indices.
    pub order: String,
    /// Drain this 0-based switch index: plan B re-homes its MATs
    /// elsewhere (migrate).
    pub exclude: Option<usize>,
    /// Journal path: written after the run (deploy/chaos/migrate), read
    /// and replayed offline (recover).
    pub journal: Option<String>,
    /// Target spec (audit/deploy/migrate): retargets the topology's
    /// programmable switches before planning.
    pub target: Option<String>,
    /// Attach the per-field state-access report (`HS5xx`) to the audit.
    pub state_report: bool,
    /// Analyze under [`hermes_tdg::AnalysisMode::RelaxedState`]: edges
    /// justified only by replicable or commutative state are relaxed.
    pub relax_state: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: String::new(),
            files: Vec::new(),
            topology: "linear:3".to_owned(),
            solver: "greedy".to_owned(),
            eps1: f64::INFINITY,
            eps2: usize::MAX,
            time_limit_secs: 10,
            threads: None,
            dot: false,
            json: false,
            seed: 0,
            trials: None,
            channel: "none".to_owned(),
            library: false,
            from_solver: "ffl".to_owned(),
            order: "auto".to_owned(),
            exclude: None,
            journal: None,
            target: None,
            state_report: false,
            relax_state: false,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
hermes — network-wide data plane program deployment

USAGE:
  hermes analyze  <files…> [--dot]
  hermes audit    <files…> [--library] [--topology SPEC] [--target SPEC]
                  [--eps1 US] [--eps2 N] [--state-report] [--relax-state]
                  [--json]
  hermes deploy   <files…> [--topology SPEC] [--target SPEC] [--solver NAME]
                  [--eps1 US] [--eps2 N] [--time-limit SECS] [--threads N]
                  [--relax-state] [--json] [--journal PATH]
  hermes simulate <files…> [--topology SPEC] [--solver NAME]
  hermes chaos    <files…> [--topology SPEC] [--solver NAME] [--seed N]
                  [--trials N] [--channel SPEC] [--eps1 US] [--eps2 N]
                  [--json] [--journal PATH]
  hermes migrate  <files…> [--topology SPEC] [--target SPEC]
                  [--from-solver NAME] [--solver NAME] [--exclude N]
                  [--order SPEC] [--seed N] [--channel SPEC] [--eps1 US]
                  [--eps2 N] [--time-limit SECS] [--json] [--journal PATH]
  hermes recover  --journal PATH [--json]
  hermes targets

TOPOLOGY SPECS:  linear:N  star:N  fattree:K  wan:1..10  waxman:N,A,B,SEED
SOLVERS:         greedy exact milp portfolio ffl ffls ms sonata speed mtp
                 fp p4all
CHANNEL SPECS:   none  lossy  drop=P,dup=P,reorder=P,delay=P,span=US
ORDER SPECS:     auto  greedy  exact  in-order  comma-separated indices
TARGET SPECS:    tofino  smartnic  soft
                 NAME:stages=N,cap=C,budget=B,latency=US (knob overrides)
                 mix:tofino+smartnic+soft (cycled over switches)

`audit` runs the static workload audit (lints, TDG dataflow, dependency
soundness) plus the pre-solve infeasibility bounds for the given topology
and eps budget. Exit is nonzero iff an error-severity diagnostic fires.
`--state-report` adds the per-field state-access classification
(read-only / read-mostly-replicable / commutative-update / single-writer)
and its HS5xx diagnostics to the report.

`--relax-state` analyzes under the relaxed-state mode: dependency edges
justified only by replicable or commutative state carry no ordering or
routing obligation, which can strictly lower A_max on aggregation-style
workloads. The plan verifier re-certifies every relaxed edge; the default
mode is unchanged and byte-identical to prior releases.

`migrate` installs plan A (--from-solver), plans a staged migration to
plan B (--solver, or --exclude N to drain switch N), prints the schedule
with its transient-overhead curve, and executes it step by step under the
seeded fault injector and the given channel. Every schedule prefix is
verified against per-stage capacity and the mixed-epoch consistency gate
before the first commit; a mid-migration failure rolls back to plan A.

`--threads N` caps the worker pool of the parallel exact search (and the
per-racer budget of the portfolio) at N OS threads; the default is the
machine's available parallelism. Results are byte-identical at every
thread count.

`--journal PATH` writes the controller's write-ahead intent journal to
PATH after the run. `recover` replays such a journal offline — without a
live network — and reports the rebuilt intent: the last durable snapshot,
any in-flight transaction or migration, and the action a restarted
controller would take (resume-commit, roll-back-txn, …). A torn tail is
reported and discarded; mid-log corruption is a typed error and a
nonzero exit.
";

/// Parses raw arguments (without the binary name).
///
/// # Errors
///
/// Returns [`CliError`] with usage guidance on malformed input.
pub fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut options = Options::default();
    let mut iter = args.iter().peekable();
    options.command =
        iter.next().ok_or_else(|| err(format!("missing command\n\n{USAGE}")))?.clone();
    if !matches!(
        options.command.as_str(),
        "analyze" | "audit" | "deploy" | "simulate" | "chaos" | "migrate" | "recover" | "targets"
    ) {
        return Err(err(format!("unknown command `{}`\n\n{USAGE}", options.command)));
    }
    while let Some(arg) = iter.next() {
        let value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>| {
            iter.next().cloned().ok_or_else(|| err(format!("flag `{arg}` needs a value")))
        };
        match arg.as_str() {
            "--topology" => options.topology = value(&mut iter)?,
            // `--algorithm` is the pre-unification spelling, kept as alias.
            "--solver" | "--algorithm" => {
                let name = value(&mut iter)?;
                solver(&name, Duration::from_secs(1)).map_err(|e| err(e.to_string()))?;
                options.solver = name;
            }
            "--eps1" => {
                options.eps1 =
                    value(&mut iter)?.parse().map_err(|_| err("--eps1 needs a number"))?
            }
            "--eps2" => {
                options.eps2 =
                    value(&mut iter)?.parse().map_err(|_| err("--eps2 needs an integer"))?
            }
            // `--budget` is the pre-unification spelling, kept as alias.
            "--time-limit" | "--budget" => {
                options.time_limit_secs =
                    value(&mut iter)?.parse().map_err(|_| err("--time-limit needs seconds"))?
            }
            "--threads" => {
                options.threads = Some(
                    value(&mut iter)?
                        .parse()
                        .map_err(|_| err("--threads needs a positive integer"))?,
                )
            }
            "--seed" => {
                options.seed =
                    value(&mut iter)?.parse().map_err(|_| err("--seed needs an integer"))?
            }
            "--trials" => {
                options.trials =
                    Some(value(&mut iter)?.parse().map_err(|_| err("--trials needs an integer"))?)
            }
            "--channel" => {
                let spec = value(&mut iter)?;
                parse_channel(&spec)?;
                options.channel = spec;
            }
            "--target" => {
                let spec = value(&mut iter)?;
                parse_target(&spec)?;
                options.target = Some(spec);
            }
            "--from-solver" => {
                let name = value(&mut iter)?;
                solver(&name, Duration::from_secs(1)).map_err(|e| err(e.to_string()))?;
                options.from_solver = name;
            }
            "--order" => {
                let spec = value(&mut iter)?;
                parse_order(&spec)?;
                options.order = spec;
            }
            "--exclude" => {
                options.exclude = Some(
                    value(&mut iter)?
                        .parse()
                        .map_err(|_| err("--exclude needs a 0-based switch index"))?,
                )
            }
            "--journal" => options.journal = Some(value(&mut iter)?),
            "--dot" => options.dot = true,
            "--json" => options.json = true,
            "--library" => options.library = true,
            "--state-report" => options.state_report = true,
            "--relax-state" => options.relax_state = true,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}`\n\n{USAGE}")))
            }
            file => options.files.push(file.to_owned()),
        }
    }
    if options.state_report && options.command != "audit" {
        return Err(err(format!("--state-report is an audit flag\n\n{USAGE}")));
    }
    if options.command == "recover" {
        if options.journal.is_none() {
            return Err(err(format!("recover needs --journal PATH\n\n{USAGE}")));
        }
        if !options.files.is_empty() {
            return Err(err("recover replays a journal, not program files".to_owned()));
        }
        return Ok(options);
    }
    if options.command == "targets" {
        if !options.files.is_empty() {
            return Err(err("targets lists built-in models and takes no program files".to_owned()));
        }
        return Ok(options);
    }
    if options.files.is_empty() && !(options.command == "audit" && options.library) {
        return Err(err(format!("no program files given\n\n{USAGE}")));
    }
    Ok(options)
}

fn load_programs(options: &Options) -> Result<Vec<hermes_dataplane::Program>, CliError> {
    let mut sources = String::new();
    for file in &options.files {
        let text =
            std::fs::read_to_string(file).map_err(|e| err(format!("cannot read `{file}`: {e}")))?;
        sources.push_str(&text);
        sources.push('\n');
    }
    parse_programs(&sources).map_err(|e| err(format!("parse error: {e}")))
}

fn write_journal(path: &Option<String>, journal: &Journal) -> Result<(), CliError> {
    if let Some(path) = path {
        std::fs::write(path, journal.bytes())
            .map_err(|e| err(format!("cannot write journal `{path}`: {e}")))?;
    }
    Ok(())
}

/// `recover --journal PATH`: replays a write-ahead journal offline and
/// reports the rebuilt controller intent — last durable snapshot, any
/// unconcluded transaction or migration, and the recovery action a
/// restarted controller would take.
///
/// # Errors
///
/// Returns [`CliError`] (nonzero exit) when the file cannot be read or
/// the journal is corrupt mid-log ([`hermes_runtime::JournalError`]); a
/// torn tail is reported and discarded, not an error.
fn run_recover(options: &Options, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| err(format!("write failed: {e}"));
    let path = options
        .journal
        .as_ref()
        .ok_or_else(|| err(format!("recover needs --journal PATH\n\n{USAGE}")))?;
    let bytes =
        std::fs::read(path).map_err(|e| err(format!("cannot read journal `{path}`: {e}")))?;
    let replay = replay_bytes(&bytes).map_err(|e| err(format!("journal replay failed: {e}")))?;
    let intent = RecoveredIntent::from_replay(&replay);
    let action = intent.planned_action();
    if options.json {
        let in_flight = match &intent.in_flight {
            Some(InFlight::Txn { epoch, .. }) => format!("{{\"txn\":{epoch}}}"),
            Some(InFlight::Migration { epoch, .. }) => format!("{{\"migration\":{epoch}}}"),
            None => "null".to_owned(),
        };
        let snapshot = match &intent.snapshot {
            Some(s) => format!("{{\"epoch\":{},\"plan_fp\":{}}}", s.epoch, s.plan_fp),
            None => "null".to_owned(),
        };
        writeln!(
            out,
            "{{\"records\":{},\"discarded_tail_bytes\":{},\"max_epoch\":{},\
             \"snapshot\":{snapshot},\"in_flight\":{in_flight},\"action\":\"{action}\"}}",
            intent.records, intent.discarded_tail_bytes, intent.max_epoch
        )
        .map_err(io)?;
        return Ok(());
    }
    writeln!(
        out,
        "journal: {} record(s) replayed, {} torn tail byte(s) discarded",
        intent.records, intent.discarded_tail_bytes
    )
    .map_err(io)?;
    writeln!(out, "max journaled epoch: {}", intent.max_epoch).map_err(io)?;
    match &intent.snapshot {
        Some(s) => writeln!(
            out,
            "snapshot: epoch {} ({} switches occupied, plan fp {:#018x})",
            s.epoch,
            s.plan.occupied_switches().len(),
            s.plan_fp
        )
        .map_err(io)?,
        None => writeln!(out, "snapshot: none").map_err(io)?,
    }
    match &intent.in_flight {
        Some(InFlight::Txn { epoch, kind, prepared, commit_order, commit_acked, .. }) => {
            writeln!(
                out,
                "in flight: {kind:?} transaction, epoch {epoch} ({} prepared, commit {}, \
                 {} commit ack(s))",
                prepared.len(),
                if commit_order.is_some() { "decided" } else { "undecided" },
                commit_acked.len()
            )
            .map_err(io)?;
        }
        Some(InFlight::Migration { epoch, order, steps_committed, .. }) => {
            writeln!(
                out,
                "in flight: migration, epoch {epoch} ({}/{} steps committed)",
                steps_committed.len(),
                order.len()
            )
            .map_err(io)?;
        }
        None => writeln!(out, "in flight: nothing").map_err(io)?,
    }
    writeln!(out, "recovery action: {action}").map_err(io)?;
    Ok(())
}

/// `chaos --trials N`: sweeps seeds `0..N`, checking runtime invariants
/// on every run — bimodal termination, no agent serving a rolled-back
/// epoch, byte-for-byte reproducible event logs — and prints a
/// committed/healed/rolled-back summary (JSON with `--json`).
///
/// # Errors
///
/// Returns [`CliError`] (nonzero exit) if any run violates an invariant.
#[allow(clippy::too_many_arguments)]
fn run_trials(
    options: &Options,
    out: &mut dyn std::io::Write,
    tdg: &hermes_tdg::Tdg,
    net: &Network,
    eps: Epsilon,
    channel: ChannelProfile,
    plan: &hermes_core::DeploymentPlan,
    trials: u64,
) -> Result<(), CliError> {
    let io = |e: std::io::Error| err(format!("write failed: {e}"));
    let (mut committed, mut healed, mut rolled_back) = (0u64, 0u64, 0u64);
    for seed in 0..trials {
        let run_once = |seed: u64| {
            let injector = FaultInjector::new(seed, FaultProfile::chaos());
            let mut rt = DeploymentRuntime::new(net.clone(), eps, injector, RetryPolicy::default())
                .with_channel_profile(channel);
            let outcome = rt.rollout(tdg, plan.clone());
            (outcome, rt)
        };
        let (outcome, rt) = run_once(seed);
        let (outcome2, rt2) = run_once(seed);
        if outcome != outcome2 || rt.log().to_json() != rt2.log().to_json() {
            return Err(err(format!("invariant violated: seed {seed} is not reproducible")));
        }
        match &outcome {
            RolloutOutcome::Committed { epoch, healed: was_healed } => {
                if *was_healed {
                    healed += 1;
                } else {
                    committed += 1;
                }
                let active = rt.active_plan().ok_or_else(|| {
                    err(format!("invariant violated: seed {seed} committed with no active plan"))
                })?;
                let down = rt.network().down_switches();
                for switch in active.occupied_switches() {
                    if !down.contains(&switch)
                        && rt.agent(switch).is_some_and(|a| a.active_epoch() != Some(*epoch))
                    {
                        return Err(err(format!(
                            "invariant violated: seed {seed} committed epoch {epoch} but \
                             switch {switch} does not serve it"
                        )));
                    }
                }
            }
            RolloutOutcome::RolledBack { epoch, .. } => {
                rolled_back += 1;
                for agent in rt.agents() {
                    if agent.active_epoch() == Some(*epoch) {
                        return Err(err(format!(
                            "invariant violated: seed {seed} rolled epoch {epoch} back but an \
                             agent still serves it"
                        )));
                    }
                }
            }
            RolloutOutcome::ControllerCrashed { .. } => {
                // `chaos()` never injects controller crashes (that is the
                // recovery soak's job); seeing one here is a bug.
                return Err(err(format!(
                    "invariant violated: seed {seed} reported a controller crash no profile \
                     injects"
                )));
            }
        }
    }
    if options.json {
        writeln!(
            out,
            "{{\"trials\":{trials},\"committed\":{committed},\"healed\":{healed},\
             \"rolled_back\":{rolled_back}}}"
        )
        .map_err(io)?;
    } else {
        writeln!(
            out,
            "trials {trials}: {committed} committed, {healed} healed, {rolled_back} rolled back"
        )
        .map_err(io)?;
    }
    Ok(())
}

/// `migrate`: install plan A with a clean control plane, compute plan B
/// (`--solver`, or `--exclude` to drain a switch), plan the staged
/// schedule, print it with its transient-overhead curve, then execute it
/// under the seeded chaos injector and the requested channel.
///
/// # Errors
///
/// Returns [`CliError`] on malformed specs, infeasible plans, or when the
/// starting plan cannot be installed.
fn run_migrate(
    options: &Options,
    out: &mut dyn std::io::Write,
    tdg: &hermes_tdg::Tdg,
) -> Result<(), CliError> {
    let io = |e: std::io::Error| err(format!("write failed: {e}"));
    let net = parse_network(options)?;
    let eps = Epsilon::new(options.eps1, options.eps2);
    let channel = parse_channel(&options.channel)?;
    let order = resolve_order(&parse_order(&options.order)?, &net)?;
    let time_limit = Duration::from_secs(options.time_limit_secs);

    let from_algo = solver(&options.from_solver, time_limit)?;
    let plan_a = from_algo
        .deploy(tdg, &net, &eps)
        .map_err(|e| err(format!("{} failed for plan A: {e}", from_algo.name())))?;
    let plan_b = match options.exclude {
        Some(idx) => {
            let ids: Vec<SwitchId> = net.switch_ids().collect();
            let &drained = ids.get(idx).ok_or_else(|| {
                err(format!(
                    "--exclude {idx} is out of range (the topology has {} switches)",
                    ids.len()
                ))
            })?;
            let opts = RedeployOptions::excluding([drained]).with_exact_budget(time_limit);
            let outcome = IncrementalDeployer::new()
                .redeploy_with(tdg, &plan_a, tdg, &net, &eps, &opts)
                .map_err(|e| err(format!("cannot drain switch {drained}: {e}")))?;
            writeln!(
                out,
                "drain switch {drained}: {} MATs stay, {} re-homed{}",
                outcome.reused,
                outcome.placed,
                if outcome.full_redeploy { " (full redeploy)" } else { "" }
            )
            .map_err(io)?;
            outcome.plan
        }
        None => {
            let algo = solver(&options.solver, time_limit)?;
            algo.deploy(tdg, &net, &eps)
                .map_err(|e| err(format!("{} failed for plan B: {e}", algo.name())))?
        }
    };

    // Plan A goes in over a clean control plane; only the migration
    // itself runs under the requested chaos.
    let mut rt =
        DeploymentRuntime::new(net, eps, FaultInjector::disabled(), RetryPolicy::default());
    if !rt.rollout(tdg, plan_a.clone()).is_committed() {
        return Err(err("could not install plan A on a clean network"));
    }
    let schedule = {
        let problem = MigrationProblem { tdg, net: rt.network(), from: &plan_a, to: &plan_b };
        let ctx = SearchContext::with_time_limit(time_limit);
        MigrationScheduler::with_order(order.clone())
            .plan(&problem, &ctx)
            .map_err(|e| err(format!("cannot schedule the migration: {e}")))?
    };
    writeln!(
        out,
        "schedule ({}): {} steps, transient A_max {} -> peak {} -> {} B",
        schedule.planner,
        schedule.steps.len(),
        schedule.from_amax,
        schedule.peak_transient_amax,
        schedule.to_amax
    )
    .map_err(io)?;
    if let Some(peak) = schedule.all_at_once_peak {
        writeln!(out, "all-at-once peak: {peak} B").map_err(io)?;
    }
    for (i, step) in schedule.steps.iter().enumerate() {
        writeln!(
            out,
            "  step {i}: switch {} ({} MATs move, {} staged, A_max {} B)",
            step.switch,
            step.moved.len(),
            step.staged_nodes,
            step.transient_amax
        )
        .map_err(io)?;
    }

    rt.set_injector(FaultInjector::new(options.seed, FaultProfile::chaos()));
    rt.set_channel_profile(channel);
    let cfg = MigrationConfig {
        plan_budget_ms: options.time_limit_secs.saturating_mul(1000),
        order,
        ..Default::default()
    };
    let outcome = rt.migrate_with_schedule(tdg, plan_b, &schedule, &cfg);
    write_journal(&options.journal, rt.journal())?;
    writeln!(out, "seed {}: {}", options.seed, outcome).map_err(io)?;
    let log = rt.log();
    writeln!(
        out,
        "events: {} ({} faults, {} step failures, {} rollbacks)",
        log.len(),
        log.count(|e| matches!(e, Event::FaultInjected { .. })),
        log.count(|e| matches!(e, Event::MigrationStepFailed { .. })),
        log.count(|e| matches!(e, Event::MigrationRolledBack { .. })),
    )
    .map_err(io)?;
    if options.json {
        writeln!(out, "{}", log.to_json()).map_err(io)?;
    }
    Ok(())
}

/// Executes the parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on any failure (I/O, parse, deployment).
pub fn run(options: &Options, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| err(format!("write failed: {e}"));
    if options.command == "recover" {
        return run_recover(options, out);
    }
    if options.command == "targets" {
        for model in builtin_targets() {
            writeln!(out, "{model}").map_err(io)?;
        }
        return Ok(());
    }
    let mut programs = if options.library && options.command == "audit" {
        hermes_dataplane::library::real_programs()
    } else {
        Vec::new()
    };
    programs.extend(load_programs(options)?);
    let mode = if options.relax_state {
        hermes_tdg::AnalysisMode::RelaxedState
    } else {
        hermes_tdg::AnalysisMode::PaperLiteral
    };
    let tdg = ProgramAnalyzer::with_mode(mode).analyze(&programs);

    match options.command.as_str() {
        "analyze" => {
            let stats = hermes_tdg::stats(&tdg);
            writeln!(out, "programs: {}", programs.len()).map_err(io)?;
            writeln!(
                out,
                "merged TDG: {} MATs, {} dependencies, {:.2} stage-units, critical path {} MATs",
                stats.nodes, stats.edges, stats.total_resource, stats.critical_path_len
            )
            .map_err(io)?;
            for finding in lint_composition(&programs) {
                writeln!(out, "lint: {finding}").map_err(io)?;
            }
            if options.dot {
                writeln!(out, "{}", hermes_tdg::to_dot(&tdg)).map_err(io)?;
            }
        }
        "audit" => {
            let net = parse_network(options)?;
            let eps = Epsilon::new(options.eps1, options.eps2);
            let mut report = hermes_analysis::audit_instance(&programs, &net, &eps, mode);
            if options.state_report {
                let state = hermes_analysis::state_report(&programs, mode);
                let mut diags = report.diagnostics;
                diags.extend(hermes_analysis::state_diagnostics(&state));
                report =
                    hermes_analysis::AuditReport::new(diags, report.certificates).with_state(state);
            }
            if options.json {
                writeln!(out, "{}", report.to_json()).map_err(io)?;
            } else {
                writeln!(out, "{report}").map_err(io)?;
            }
            if report.has_errors() {
                return Err(err(format!(
                    "audit found {} error-severity diagnostic(s)",
                    report.summary.errors
                )));
            }
        }
        "deploy" => {
            let net = parse_network(options)?;
            let eps = Epsilon::new(options.eps1, options.eps2);
            let algo = solver_with_threads(
                &options.solver,
                Duration::from_secs(options.time_limit_secs),
                options.threads,
            )?;
            let plan = algo
                .deploy(&tdg, &net, &eps)
                .map_err(|e| err(format!("{} failed: {e}", algo.name())))?;
            let violations = verify(&tdg, &net, &plan, &eps);
            if !violations.is_empty() {
                return Err(err(format!("plan failed verification: {violations:?}")));
            }
            if options.journal.is_some() {
                // Install over a clean control plane purely to produce
                // the durable intent journal of the transaction.
                let mut rt = DeploymentRuntime::new(
                    net.clone(),
                    eps,
                    FaultInjector::disabled(),
                    RetryPolicy::default(),
                );
                if !rt.rollout(&tdg, plan.clone()).is_committed() {
                    return Err(err("could not install the plan to journal it"));
                }
                write_journal(&options.journal, rt.journal())?;
            }
            if options.json {
                let artifacts = generate(&tdg, &net, &plan);
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string_pretty(&artifacts)
                        .map_err(|e| err(format!("serialize: {e}")))?
                )
                .map_err(io)?;
            } else {
                write!(out, "{}", explain(&tdg, &net, &plan)).map_err(io)?;
            }
        }
        "simulate" => {
            let net = parse_network(options)?;
            let eps = Epsilon::new(options.eps1, options.eps2);
            let algo = solver_with_threads(
                &options.solver,
                Duration::from_secs(options.time_limit_secs),
                options.threads,
            )?;
            let plan = algo
                .deploy(&tdg, &net, &eps)
                .map_err(|e| err(format!("{} failed: {e}", algo.name())))?;
            let artifacts = generate(&tdg, &net, &plan);
            let result = simulate_plan(&tdg, &net, &plan, &artifacts, &PlanFlowConfig::default())
                .ok_or_else(|| err("plan could not be simulated (empty or unroutable)"))?;
            writeln!(out, "overhead: {} B per packet", result.overhead_bytes).map_err(io)?;
            writeln!(out, "switches traversed: {}", result.traversed.len()).map_err(io)?;
            writeln!(out, "loaded:   {}", result.loaded).map_err(io)?;
            writeln!(out, "baseline: {}", result.baseline).map_err(io)?;
            writeln!(
                out,
                "impact: {:.3}x FCT, {:.3}x goodput",
                result.fct_ratio(),
                result.goodput_ratio()
            )
            .map_err(io)?;
        }
        "chaos" => {
            let net = parse_network(options)?;
            let eps = Epsilon::new(options.eps1, options.eps2);
            let channel = parse_channel(&options.channel)?;
            let algo = solver_with_threads(
                &options.solver,
                Duration::from_secs(options.time_limit_secs),
                options.threads,
            )?;
            let plan = algo
                .deploy(&tdg, &net, &eps)
                .map_err(|e| err(format!("{} failed: {e}", algo.name())))?;
            if let Some(trials) = options.trials {
                if options.journal.is_some() {
                    return Err(err("--journal wants a single run, not --trials"));
                }
                return run_trials(options, out, &tdg, &net, eps, channel, &plan, trials);
            }
            let injector = FaultInjector::new(options.seed, FaultProfile::chaos());
            let mut runtime = DeploymentRuntime::new(net, eps, injector, RetryPolicy::default())
                .with_channel_profile(channel);
            let outcome = runtime.rollout(&tdg, plan);
            write_journal(&options.journal, runtime.journal())?;
            writeln!(out, "seed {}: {}", options.seed, outcome).map_err(io)?;
            let log = runtime.log();
            writeln!(
                out,
                "events: {} ({} faults, {} retries, {} rollbacks)",
                log.len(),
                log.count(|e| matches!(e, Event::FaultInjected { .. })),
                log.count(|e| matches!(e, Event::RetryScheduled { .. })),
                log.count(|e| matches!(e, Event::RolledBack { .. })),
            )
            .map_err(io)?;
            if let RolloutOutcome::Committed { healed: true, .. } = outcome {
                for e in &log.events {
                    if let Event::RecoveryCompleted {
                        recovery_us, a_max_before, a_max_after, ..
                    } = e
                    {
                        writeln!(
                            out,
                            "recovery: {recovery_us} us, A_max {a_max_before} -> {a_max_after} B"
                        )
                        .map_err(io)?;
                    }
                }
            }
            if options.json {
                writeln!(out, "{}", log.to_json()).map_err(io)?;
            }
        }
        "migrate" => run_migrate(options, out, &tdg)?,
        _ => unreachable!("validated in parse_args"),
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_deploy_flags() {
        let options = parse_args(&args(&[
            "deploy",
            "a.p4dsl",
            "--topology",
            "wan:3",
            "--solver",
            "ffl",
            "--eps2",
            "4",
            "--time-limit",
            "7",
            "--json",
        ]))
        .unwrap();
        assert_eq!(options.command, "deploy");
        assert_eq!(options.files, vec!["a.p4dsl"]);
        assert_eq!(options.topology, "wan:3");
        assert_eq!(options.solver, "ffl");
        assert_eq!(options.eps2, 4);
        assert_eq!(options.time_limit_secs, 7);
        assert!(options.json);
        assert!(options.eps1.is_infinite());
    }

    #[test]
    fn threads_flag_parses_positive_and_rejects_zero_and_garbage() {
        let options = parse_args(&args(&["deploy", "a.p4dsl", "--threads", "4"])).unwrap();
        assert_eq!(options.threads, std::num::NonZeroUsize::new(4));
        assert_eq!(parse_args(&args(&["deploy", "a.p4dsl"])).unwrap().threads, None);
        let e = parse_args(&args(&["deploy", "a.p4dsl", "--threads", "0"])).unwrap_err();
        assert!(e.0.contains("--threads needs a positive integer"), "{e}");
        let e = parse_args(&args(&["deploy", "a.p4dsl", "--threads", "lots"])).unwrap_err();
        assert!(e.0.contains("--threads needs a positive integer"), "{e}");
        assert!(parse_args(&args(&["deploy", "a.p4dsl", "--threads"])).is_err());
    }

    #[test]
    fn help_documents_the_threads_flag() {
        assert!(USAGE.contains("--threads N"), "usage must document --threads");
    }

    #[test]
    fn legacy_flag_spellings_still_parse() {
        let options =
            parse_args(&args(&["deploy", "a.p4dsl", "--algorithm", "hermes", "--budget", "3"]))
                .unwrap();
        assert_eq!(options.solver, "hermes");
        assert_eq!(options.time_limit_secs, 3);
    }

    #[test]
    fn unknown_solver_is_rejected_at_parse_time_with_the_valid_set() {
        let e = parse_args(&args(&["deploy", "a.p4dsl", "--solver", "gurobi"])).unwrap_err();
        assert!(e.0.contains("unknown solver `gurobi`"), "{e}");
        for name in SOLVER_NAMES {
            assert!(e.0.contains(name), "error does not list `{name}`: {e}");
        }
    }

    #[test]
    fn target_flag_parses_and_retargets_the_network() {
        let options = parse_args(&args(&["deploy", "a.p4dsl", "--target", "smartnic"])).unwrap();
        assert_eq!(options.target.as_deref(), Some("smartnic"));
        let net = parse_network(&Options {
            topology: "linear:3".to_owned(),
            target: Some("mix:tofino+smartnic".to_owned()),
            ..Options::default()
        })
        .unwrap();
        let kinds: Vec<_> = net.switch_ids().map(|s| net.switch(s).target).collect();
        assert_eq!(
            kinds,
            vec![
                hermes_net::TargetKind::Pipeline,
                hermes_net::TargetKind::SmartNic,
                hermes_net::TargetKind::Pipeline
            ]
        );
    }

    #[test]
    fn bad_target_specs_are_rejected_at_parse_time() {
        let e = parse_args(&args(&["deploy", "a.p4dsl", "--target", "fpga"])).unwrap_err();
        assert!(e.0.contains("unknown target `fpga`"), "{e}");
        let e = parse_args(&args(&["audit", "--library", "--target", "smartnic:stages=0"]))
            .unwrap_err();
        assert!(e.0.contains("finite and positive"), "{e}");
    }

    #[test]
    fn targets_subcommand_lists_builtin_models() {
        let options = parse_args(&args(&["targets"])).unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for name in ["tofino", "smartnic", "soft"] {
            assert!(text.contains(name), "missing `{name}` in:\n{text}");
        }
        assert!(parse_args(&args(&["targets", "a.p4dsl"])).is_err());
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse_args(&args(&["frobnicate", "x"])).is_err());
        assert!(parse_args(&args(&["deploy", "x", "--wat"])).is_err());
        assert!(parse_args(&args(&["deploy"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
    }

    #[test]
    fn topology_specs() {
        assert_eq!(parse_topology("linear:3").unwrap().switch_count(), 3);
        assert_eq!(parse_topology("star:4").unwrap().switch_count(), 5);
        assert_eq!(parse_topology("fattree:4").unwrap().switch_count(), 20);
        assert_eq!(parse_topology("wan:1").unwrap().switch_count(), 79);
        assert_eq!(parse_topology("waxman:20,0.5,0.4,7").unwrap().switch_count(), 20);
        for bad in ["linear", "wan:11", "fattree:3", "waxman:5,2.0,0.4,7", "blob:2"] {
            assert!(parse_topology(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn topology_error_messages_name_the_problem() {
        let msg = |spec: &str| parse_topology(spec).unwrap_err().0;
        assert!(msg("linear").contains("must look like `linear:3`"), "{}", msg("linear"));
        assert!(msg("linear:x").contains("`x` is not a number"), "{}", msg("linear:x"));
        assert!(
            msg("linear:x").contains("linear:x"),
            "error should quote the full spec: {}",
            msg("linear:x")
        );
        assert!(msg("fattree:3").contains("even"), "{}", msg("fattree:3"));
        assert!(msg("wan:11").contains("1..=10"), "{}", msg("wan:11"));
        assert!(msg("waxman:5").contains("waxman:N,ALPHA,BETA,SEED"), "{}", msg("waxman:5"));
        assert!(msg("waxman:5,2.0,0.4,7").contains("(0, 1]"), "{}", msg("waxman:5,2.0,0.4,7"));
        assert!(msg("blob:2").contains("unknown topology kind `blob`"), "{}", msg("blob:2"));
    }

    #[test]
    fn chaos_flags_parse() {
        let options =
            parse_args(&args(&["chaos", "a.p4dsl", "--seed", "42", "--topology", "linear:4"]))
                .unwrap();
        assert_eq!(options.command, "chaos");
        assert_eq!(options.seed, 42);
        assert_eq!(options.topology, "linear:4");
        assert!(parse_args(&args(&["chaos", "a.p4dsl", "--seed", "banana"])).is_err());
        // Default seed is 0 when the flag is absent.
        assert_eq!(parse_args(&args(&["chaos", "a.p4dsl"])).unwrap().seed, 0);
        // Trials and channel flags.
        let options = parse_args(&args(&[
            "chaos",
            "a.p4dsl",
            "--trials",
            "25",
            "--channel",
            "lossy",
            "--json",
        ]))
        .unwrap();
        assert_eq!(options.trials, Some(25));
        assert_eq!(options.channel, "lossy");
        assert!(parse_args(&args(&["chaos", "a.p4dsl", "--trials", "many"])).is_err());
        assert_eq!(parse_args(&args(&["chaos", "a.p4dsl"])).unwrap().trials, None);
        assert_eq!(parse_args(&args(&["chaos", "a.p4dsl"])).unwrap().channel, "none");
    }

    #[test]
    fn channel_specs() {
        assert!(parse_channel("none").unwrap().is_none());
        let lossy = parse_channel("lossy").unwrap();
        assert!(lossy.drop_prob > 0.0 && lossy.duplicate_prob > 0.0);
        let custom = parse_channel("drop=0.2,dup=0.1,reorder=0.05,delay=0.3,span=500").unwrap();
        assert_eq!(custom.drop_prob, 0.2);
        assert_eq!(custom.duplicate_prob, 0.1);
        assert_eq!(custom.reorder_prob, 0.05);
        assert_eq!(custom.delay_prob, 0.3);
        assert_eq!(custom.delay_span_us, 500);
        // Omitted knobs stay zero.
        assert_eq!(parse_channel("drop=0.5").unwrap().duplicate_prob, 0.0);
        for bad in ["drop", "drop=high", "loss=0.1", "drop=1.5", "drop=-0.1", "drop=NaN"] {
            assert!(parse_channel(bad).is_err(), "`{bad}` accepted");
        }
        let e = parse_channel("drop=1.5").unwrap_err();
        assert_eq!(e.spec, "drop=1.5");
        assert!(e.to_string().contains("not a probability"), "{e}");
    }

    #[test]
    fn solver_lookup() {
        for name in SOLVER_NAMES {
            assert!(solver(name, Duration::from_secs(1)).is_ok(), "{name}");
        }
        // Aliases from before the unification keep working.
        for alias in ["hermes", "optimal", "ilp", "min-stage", "flightplan"] {
            assert!(solver(alias, Duration::from_secs(1)).is_ok(), "{alias}");
        }
        let e = match solver("gurobi", Duration::from_secs(1)) {
            Err(e) => e,
            Ok(_) => panic!("`gurobi` accepted"),
        };
        assert_eq!(e.given, "gurobi");
        assert!(e.to_string().contains("portfolio"), "{e}");
    }

    #[test]
    fn end_to_end_deploy_over_a_temp_file() {
        let dir = std::env::temp_dir().join("hermes-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("counter.p4dsl");
        std::fs::write(
            &file,
            r#"
            program counter {
                header ipv4.src: 4;
                metadata meta.idx: 4;
                table hash { actions { go { meta.idx = hash(ipv4.src); } } resource 0.2; }
                table count {
                    key { meta.idx: exact; }
                    actions { bump { register(meta.idx); } }
                    resource 0.4;
                }
            }
            "#,
        )
        .unwrap();
        let options =
            parse_args(&args(&["deploy", file.to_str().unwrap(), "--topology", "linear:2"]))
                .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("deployment: A_max="), "{text}");

        // analyze over the same file reports the TDG.
        let options = parse_args(&args(&["analyze", file.to_str().unwrap(), "--dot"])).unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("merged TDG: 2 MATs"), "{text}");
        assert!(text.contains("digraph"), "{text}");

        // simulate reports the end-to-end impact.
        let options =
            parse_args(&args(&["simulate", file.to_str().unwrap(), "--topology", "linear:2"]))
                .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("impact:"), "{text}");

        // chaos runs a seeded fault-injected rollout and reports it.
        let options = parse_args(&args(&[
            "chaos",
            file.to_str().unwrap(),
            "--topology",
            "linear:3",
            "--seed",
            "7",
        ]))
        .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("seed 7:"), "{text}");
        assert!(text.contains("events:"), "{text}");
        // The same seed reports the same thing.
        let mut again = Vec::new();
        run(&options, &mut again).unwrap();
        assert_eq!(text, String::from_utf8(again).unwrap());

        // chaos --trials sweeps seeds over a lossy channel and reports a
        // summary; every run upholds the runtime invariants (or this
        // errors).
        let options = parse_args(&args(&[
            "chaos",
            file.to_str().unwrap(),
            "--topology",
            "linear:3",
            "--trials",
            "5",
            "--channel",
            "lossy",
        ]))
        .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("trials 5:"), "{text}");
        let options = Options { json: true, ..options };
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"trials\":5"), "{text}");
    }

    #[test]
    fn migrate_flags_parse() {
        let options = parse_args(&args(&[
            "migrate",
            "a.p4dsl",
            "--topology",
            "linear:4",
            "--from-solver",
            "ffl",
            "--solver",
            "greedy",
            "--exclude",
            "1",
            "--order",
            "exact",
            "--channel",
            "lossy",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(options.command, "migrate");
        assert_eq!(options.from_solver, "ffl");
        assert_eq!(options.solver, "greedy");
        assert_eq!(options.exclude, Some(1));
        assert_eq!(options.order, "exact");
        assert_eq!(options.channel, "lossy");
        assert_eq!(options.seed, 9);
        // Defaults.
        let options = parse_args(&args(&["migrate", "a.p4dsl"])).unwrap();
        assert_eq!(options.from_solver, "ffl");
        assert_eq!(options.order, "auto");
        assert_eq!(options.exclude, None);
    }

    #[test]
    fn malformed_migrate_values_fail_at_parse_time_with_typed_errors() {
        // --order: keyword or comma-separated indices only.
        let e = parse_args(&args(&["migrate", "a.p4dsl", "--order", "banana"])).unwrap_err();
        assert!(e.0.contains("order spec `banana`"), "{e}");
        let e = parse_args(&args(&["migrate", "a.p4dsl", "--order", "0,1,1"])).unwrap_err();
        assert!(e.0.contains("appears twice"), "{e}");
        // --channel is validated at parse time now, not first use.
        let e = parse_args(&args(&["migrate", "a.p4dsl", "--channel", "drop=high"])).unwrap_err();
        assert!(e.0.contains("channel spec `drop=high`"), "{e}");
        // --from-solver goes through the same typed solver lookup.
        let e = parse_args(&args(&["migrate", "a.p4dsl", "--from-solver", "gurobi"])).unwrap_err();
        assert!(e.0.contains("unknown solver `gurobi`"), "{e}");
        // --exclude must be an index.
        let e = parse_args(&args(&["migrate", "a.p4dsl", "--exclude", "two"])).unwrap_err();
        assert!(e.0.contains("--exclude"), "{e}");
    }

    #[test]
    fn order_specs_parse_and_resolve() {
        assert_eq!(parse_order("auto").unwrap(), OrderSpec::Auto);
        assert_eq!(parse_order("in-order").unwrap(), OrderSpec::InOrder);
        assert_eq!(parse_order("2,0,1").unwrap(), OrderSpec::Explicit(vec![2, 0, 1]));
        let net = parse_topology("linear:3").unwrap();
        let ids: Vec<SwitchId> = net.switch_ids().collect();
        match resolve_order(&parse_order("2,0").unwrap(), &net).unwrap() {
            MigrationOrder::Explicit(order) => assert_eq!(order, vec![ids[2], ids[0]]),
            other => panic!("expected explicit order, got {other:?}"),
        }
        // Out-of-range indices are range-checked against the topology.
        let e = resolve_order(&parse_order("0,7").unwrap(), &net).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        assert!(e.to_string().contains("3 switches"), "{e}");
    }

    #[test]
    fn audit_flags_parse() {
        let options = parse_args(&args(&["audit", "--library", "--json"])).unwrap();
        assert_eq!(options.command, "audit");
        assert!(options.library);
        assert!(options.json);
        assert!(options.files.is_empty());
        // Without --library, audit still needs program files...
        assert!(parse_args(&args(&["audit"])).is_err());
        // ...and --library does not excuse other commands from them.
        assert!(parse_args(&args(&["deploy", "--library"])).is_err());
    }

    #[test]
    fn state_report_flags_parse_and_bind_to_audit() {
        let options =
            parse_args(&args(&["audit", "--library", "--state-report", "--relax-state"])).unwrap();
        assert!(options.state_report);
        assert!(options.relax_state);
        // Defaults are off.
        let options = parse_args(&args(&["audit", "--library"])).unwrap();
        assert!(!options.state_report && !options.relax_state);
        // --state-report is audit-only; --relax-state also drives deploy.
        let e = parse_args(&args(&["deploy", "a.p4dsl", "--state-report"])).unwrap_err();
        assert!(e.0.contains("--state-report is an audit flag"), "{e}");
        assert!(parse_args(&args(&["deploy", "a.p4dsl", "--relax-state"])).unwrap().relax_state);
        assert!(USAGE.contains("--state-report"), "usage must document --state-report");
        assert!(USAGE.contains("--relax-state"), "usage must document --relax-state");
    }

    #[test]
    fn audit_state_report_emits_hs_codes_and_field_rows() {
        let options = parse_args(&args(&["audit", "--library", "--state-report"])).unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("HS504"), "summary diagnostic must fire: {text}");
        assert!(text.contains("fields relaxable"), "{text}");
        assert!(text.contains("state: "), "per-field rows must print: {text}");
        // Conservative mode relaxes no edges even when fields qualify.
        assert!(text.contains("0 of"), "{text}");

        // JSON mode embeds the report and stays parseable.
        let options = Options { json: true, ..options };
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"state\""), "{text}");
        assert!(text.contains("\"HS504\""), "{text}");
        let report: hermes_analysis::AuditReport = serde_json::from_str(&text).unwrap();
        assert!(report.state.is_some());

        // Without the flag the JSON omits the key entirely.
        let options = parse_args(&args(&["audit", "--library", "--json"])).unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("\"state\""), "{text}");
    }

    #[test]
    fn relax_state_audit_counts_relaxed_edges_on_aggregation_workloads() {
        let dir = std::env::temp_dir().join("hermes-cli-relax-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("agg.p4dsl");
        std::fs::write(
            &file,
            r#"
            program agg {
                header pkt.v: 4;
                metadata meta.acc: 4;
                table w0 { actions { fold0 { meta.acc = fold_add(pkt.v); } } resource 0.2; }
                table w1 { actions { fold1 { meta.acc = fold_add(pkt.v); } } resource 0.3; }
            }
            "#,
        )
        .unwrap();
        let options = parse_args(&args(&[
            "audit",
            file.to_str().unwrap(),
            "--state-report",
            "--relax-state",
            "--topology",
            "linear:2",
        ]))
        .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("commutative-update(add)"), "{text}");
        assert!(text.contains("HS502"), "{text}");
        assert!(text.contains("1 of 1 dependency edges relaxed"), "{text}");
    }

    #[test]
    fn audit_library_is_clean_and_emits_typed_json() {
        let options =
            parse_args(&args(&["audit", "--library", "--json", "--topology", "fattree:4"]))
                .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"diagnostics\""), "{text}");
        assert!(text.contains("\"summary\""), "{text}");
        assert!(text.contains("\"errors\": 0"), "{text}");

        // Pretty mode prints the summary line.
        let options = Options { json: false, ..options };
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("audit: 0 error(s)"), "{text}");
    }

    #[test]
    fn audit_broken_workload_errors_with_stable_codes() {
        let dir = std::env::temp_dir().join("hermes-cli-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("broken.p4dsl");
        std::fs::write(
            &file,
            r#"
            program broken {
                metadata meta.ghost: 4;
                table r {
                    key { meta.ghost: exact; }
                    actions { a { drop(); } }
                    resource 0.2;
                }
            }
            "#,
        )
        .unwrap();
        let options = parse_args(&args(&["audit", file.to_str().unwrap(), "--json"])).unwrap();
        let mut out = Vec::new();
        let e = run(&options, &mut out).unwrap_err();
        assert!(e.0.contains("error-severity"), "{e}");
        let text = String::from_utf8(out).unwrap();
        // Both the lint and the independent dataflow pass fire.
        assert!(text.contains("HL001"), "{text}");
        assert!(text.contains("HD101"), "{text}");
    }

    #[test]
    fn end_to_end_migrate_drains_a_switch() {
        let dir = std::env::temp_dir().join("hermes-cli-migrate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("counter.p4dsl");
        std::fs::write(
            &file,
            r#"
            program counter {
                header ipv4.src: 4;
                metadata meta.idx: 4;
                table hash { actions { go { meta.idx = hash(ipv4.src); } } resource 0.2; }
                table count {
                    key { meta.idx: exact; }
                    actions { bump { register(meta.idx); } }
                    resource 0.4;
                }
            }
            "#,
        )
        .unwrap();
        // Drain switch 0: plan B re-homes everything the first-fit plan A
        // put there, and the staged migration executes under a lossy
        // channel with seeded faults.
        let options = parse_args(&args(&[
            "migrate",
            file.to_str().unwrap(),
            "--topology",
            "linear:3",
            "--exclude",
            "0",
            "--seed",
            "3",
            "--channel",
            "lossy",
        ]))
        .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("drain switch"), "{text}");
        assert!(text.contains("schedule ("), "{text}");
        assert!(text.contains("seed 3:"), "{text}");
        // Bimodal: plan B lands or plan A is restored — never an abort on
        // this gate-clean workload.
        assert!(text.contains("migrated") || text.contains("rolled back"), "{text}");
        assert!(!text.contains("aborted"), "{text}");
        // Same seed, same report.
        let mut again = Vec::new();
        run(&options, &mut again).unwrap();
        assert_eq!(text, String::from_utf8(again).unwrap());

        // The event log carries the schema version for golden diffing.
        let options = Options { json: true, ..options };
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"schema_version\": 3"), "{text}");
    }

    #[test]
    fn recover_flags_parse() {
        let options = parse_args(&args(&["recover", "--journal", "/tmp/x.hjl", "--json"])).unwrap();
        assert_eq!(options.command, "recover");
        assert_eq!(options.journal.as_deref(), Some("/tmp/x.hjl"));
        assert!(options.json);
        // recover insists on a journal and refuses program files.
        let e = parse_args(&args(&["recover"])).unwrap_err();
        assert!(e.0.contains("--journal"), "{e}");
        let e = parse_args(&args(&["recover", "a.p4dsl", "--journal", "j"])).unwrap_err();
        assert!(e.0.contains("not program files"), "{e}");
        // --journal parses on the runtime commands too.
        let options = parse_args(&args(&["chaos", "a.p4dsl", "--journal", "/tmp/j.hjl"])).unwrap();
        assert_eq!(options.journal.as_deref(), Some("/tmp/j.hjl"));
    }

    #[test]
    fn end_to_end_journal_round_trip_through_recover() {
        let dir = std::env::temp_dir().join("hermes-cli-recover-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("counter.p4dsl");
        std::fs::write(
            &file,
            r#"
            program counter {
                header ipv4.src: 4;
                metadata meta.idx: 4;
                table hash { actions { go { meta.idx = hash(ipv4.src); } } resource 0.2; }
                table count {
                    key { meta.idx: exact; }
                    actions { bump { register(meta.idx); } }
                    resource 0.4;
                }
            }
            "#,
        )
        .unwrap();
        let journal = dir.join("deploy.hjl");
        // deploy --journal writes the journal of a clean install.
        let options = parse_args(&args(&[
            "deploy",
            file.to_str().unwrap(),
            "--topology",
            "linear:2",
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        assert!(journal.exists());

        // recover replays it offline: a concluded deploy affirms the
        // snapshot.
        let options =
            parse_args(&args(&["recover", "--journal", journal.to_str().unwrap()])).unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("record(s) replayed"), "{text}");
        assert!(text.contains("snapshot: epoch 1"), "{text}");
        assert!(text.contains("in flight: nothing"), "{text}");
        assert!(text.contains("recovery action: affirm-snapshot"), "{text}");

        // JSON mode emits the same verdict machine-readably.
        let options = Options { json: true, ..options };
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"action\":\"affirm-snapshot\""), "{text}");
        assert!(text.contains("\"in_flight\":null"), "{text}");

        // A truncated journal with no intact tail frame is a torn tail:
        // reported, discarded, exit zero.
        let bytes = std::fs::read(&journal).unwrap();
        let torn = dir.join("torn.hjl");
        std::fs::write(&torn, &bytes[..bytes.len() - 3]).unwrap();
        let options = parse_args(&args(&["recover", "--journal", torn.to_str().unwrap()])).unwrap();
        let mut out = Vec::new();
        run(&options, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("torn tail byte(s) discarded"), "{text}");

        // A journal with a corrupt header is a typed error, not a panic.
        let mut broken = bytes.clone();
        broken[0] ^= 0xFF;
        let bad = dir.join("bad.hjl");
        std::fs::write(&bad, &broken).unwrap();
        let options = parse_args(&args(&["recover", "--journal", bad.to_str().unwrap()])).unwrap();
        let mut out = Vec::new();
        let e = run(&options, &mut out).unwrap_err();
        assert!(e.0.contains("journal replay failed"), "{e}");

        // Missing file: clean error.
        let options = parse_args(&args(&["recover", "--journal", "/nonexistent/j.hjl"])).unwrap();
        let mut out = Vec::new();
        let e = run(&options, &mut out).unwrap_err();
        assert!(e.0.contains("cannot read journal"), "{e}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let options = parse_args(&args(&["analyze", "/nonexistent/path.p4dsl"])).unwrap();
        let mut out = Vec::new();
        let e = run(&options, &mut out).unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
    }
}
