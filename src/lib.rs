//! # Hermes — low-overhead inter-switch coordination for network-wide
//! data plane program deployment
//!
//! A full reproduction of *"Toward Low-Overhead Inter-Switch Coordination
//! in Network-Wide Data Plane Program Deployment"* (ICDCS 2022) as a Rust
//! workspace. This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`dataplane`] | `hermes-dataplane` | programs, MATs, fields, workload generators |
//! | [`tdg`] | `hermes-tdg` | table dependency graphs, merging, metadata analysis |
//! | [`net`] | `hermes-net` | substrate network, paths, topologies |
//! | [`milp`] | `hermes-milp` | simplex + branch-and-bound MILP solver |
//! | [`core`] | `hermes-core` | the Hermes analyzer, P#1, heuristic, Optimal, verifier |
//! | [`baselines`] | `hermes-baselines` | MS, Sonata, SPEED, MTP, FP, P4All, FFL, FFLS |
//! | [`sim`] | `hermes-sim` | packet-level simulator for FCT/goodput |
//! | [`backend`] | `hermes-backend` | switch configs + pipeline emulator |
//! | [`runtime`] | `hermes-runtime` | fault injection, transactional rollout, healing |
//!
//! # End-to-end example
//!
//! ```
//! use hermes::core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
//! use hermes::dataplane::library;
//! use hermes::net::topology;
//!
//! // Ten concurrent data plane programs, a three-switch testbed.
//! let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
//! let net = topology::linear(3, 10.0);
//! let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose())?;
//!
//! // The plan satisfies every constraint of the paper's formulation…
//! assert!(hermes::core::verify(&tdg, &net, &plan, &Epsilon::loose()).is_empty());
//! // …and its per-packet byte overhead is the objective Hermes minimizes.
//! println!("A_max = {} bytes", plan.max_inter_switch_bytes(&tdg));
//! # Ok::<(), hermes::core::DeployError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hermes_analysis as analysis;
pub use hermes_backend as backend;
pub use hermes_baselines as baselines;
pub use hermes_core as core;
pub use hermes_dataplane as dataplane;
pub use hermes_milp as milp;
pub use hermes_net as net;
pub use hermes_runtime as runtime;
pub use hermes_sim as sim;
pub use hermes_tdg as tdg;
