//! Derive macros for the in-repo `serde` shim.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework (see `vendor/serde`). These
//! derives implement its two traits — `Serialize::to_value` and
//! `Deserialize::from_value` — for plain structs and enums. The parser is
//! hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`): it
//! supports non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like, which covers every type the
//! workspace derives.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility: optionally followed by `(crate)` etc.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut iter);
                reject_generics(&mut iter, &name);
                let shape = match iter.next() {
                    None => Shape::Unit,
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::Tuple(split_top_level(g.stream()).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::Named(named_fields(g.stream()))
                    }
                    other => panic!("unsupported struct body for `{name}`: {other:?}"),
                };
                return Item { name, shape };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut iter);
                reject_generics(&mut iter, &name);
                let Some(TokenTree::Group(g)) = iter.next() else {
                    panic!("enum `{name}` has no body");
                };
                return Item { name, shape: Shape::Enum(variants(g.stream())) };
            }
            Some(_) => {}
            None => panic!("no struct or enum found in derive input"),
        }
    }
}

fn expect_ident(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn reject_generics(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>, name: &str) {
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde derive does not support generics (type `{name}`)");
        }
    }
}

/// Splits a token stream on commas that sit outside `<...>` nesting.
/// Bracket/brace/paren nesting arrives pre-grouped, so only angle
/// brackets need tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i64;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().expect("non-empty").push(tt);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

/// Field names of a named-field group: per comma-segment, skip attributes
/// and visibility; the first remaining identifier is the field name.
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| leading_ident(&seg).unwrap_or_else(|| panic!("field name in {seg:?}")))
        .collect()
}

fn leading_ident(seg: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < seg.len() {
        match &seg[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr + its group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = seg.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
    None
}

fn variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let name = leading_ident(&seg).unwrap_or_else(|| panic!("variant name in {seg:?}"));
            let kind = seg
                .iter()
                .find_map(|tt| match tt {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        Some(VariantKind::Tuple(split_top_level(g.stream()).len()))
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        Some(VariantKind::Named(named_fields(g.stream())))
                    }
                    _ => None,
                })
                .unwrap_or(VariantKind::Unit);
            Variant { name, kind }
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Named(fields) => {
            let mut s = String::from("{ let mut __m = ::std::vec::Vec::new(); ");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}))); "
                ));
            }
            s.push_str("::serde::Value::Map(__m) }");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")), "
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![ \
                             (::std::string::String::from(\"{vn}\"), {inner})]), ",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("{ let mut __m = ::std::vec::Vec::new(); ");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))); "
                            ));
                        }
                        inner.push_str("::serde::Value::Map(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![ \
                             (::std::string::String::from(\"{vn}\"), {inner})]), "
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => format!("{{ let _ = __v; ::std::result::Result::Ok({name}) }}"),
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.get_field(\"{f}\")?)?"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = __v.as_seq_len({n}, \"{name}\")?; \
                 ::std::result::Result::Ok({name}({})) }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}), "
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let __items = __inner.as_seq_len({n}, \"{name}::{vn}\")?; \
                                 {name}::{vn}({}) }}",
                                inits.join(", ")
                            )
                        };
                        data_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({ctor}), "));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __inner.get_field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}), ",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                   }}, \
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, __inner) = &__entries[0]; \
                     match __tag.as_str() {{ \
                       {data_arms} \
                       __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected {name}, found {{__other:?}}\"))), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{ \
             {body} \
           }} \
         }}"
    )
}
