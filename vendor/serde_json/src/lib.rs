//! Offline vendored JSON text layer for the in-repo `serde` shim.
//!
//! Renders [`serde::Value`] trees as JSON text and parses JSON text back
//! into them. Floats are written with Rust's shortest round-trip
//! formatting (`{:?}`), which is what the real crate's `float_roundtrip`
//! feature guarantees.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when a map key does not serialize to a scalar.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] when a map key does not serialize to a scalar.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            let _ = write!(out, "{f:?}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", char::from(b), self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid keyword"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid keyword"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid keyword"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b =
                *self.bytes.get(self.pos).ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c =
                        rest.chars().next().ok_or_else(|| Error::custom("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::custom("integer overflow"));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "x".to_owned()), (2, "y".to_owned())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&json).unwrap(), v);

        let mut map = std::collections::BTreeMap::new();
        map.insert(3usize, vec![1.0f64, 2.0]);
        let json = to_string(&map).unwrap();
        assert_eq!(json, "{\"3\":[1.0,2.0]}");
        let back: std::collections::BTreeMap<usize, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn nonfinite_floats_round_trip() {
        let json = to_string(&f64::INFINITY).unwrap();
        assert_eq!(json, "\"inf\"");
        assert_eq!(from_str::<f64>(&json).unwrap(), f64::INFINITY);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u8, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 junk").is_err());
    }
}
