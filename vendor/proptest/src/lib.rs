//! Offline vendored property-testing shim.
//!
//! Implements the slice of the `proptest` API this workspace uses: the
//! [`proptest!`] macro, range/tuple/`any` strategies, `prop_map` /
//! `prop_flat_map` combinators, [`collection::vec`], and the
//! `prop_assert*` family. Cases are generated deterministically from a
//! seed derived from the test name, so failures reproduce across runs
//! without a persistence file; there is no shrinking — the workspace
//! records minimized regressions as explicit unit tests instead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("rejected by prop_assume!"),
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $lo:expr, $hi:expr;)*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> RangeInclusive<$t> {
                $lo..=$hi
            }
        }
    )*};
}

impl_arbitrary_int! {
    u8 => u8::MIN, u8::MAX;
    u16 => u16::MIN, u16::MAX;
    u32 => u32::MIN, u32::MAX;
    u64 => u64::MIN, u64::MAX;
    usize => usize::MIN, usize::MAX;
    i8 => i8::MIN, i8::MAX;
    i16 => i16::MIN, i16::MAX;
    i32 => i32::MIN, i32::MAX;
    i64 => i64::MIN, i64::MAX;
    isize => isize::MIN, isize::MAX;
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::RangeInclusive;

    /// A length spec: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { min: r.start, max: r.end.saturating_sub(1) }
        }
    }

    /// A `Vec` of values drawn from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: generates cases until `cfg.cases` pass, panicking
/// on the first failure. Deterministic: the case stream depends only on
/// the test name and case index.
pub fn run_cases<F>(cfg: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let base = fnv1a(test_name.as_bytes());
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(cfg.cases) * 20 + 100;
    while passed < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest `{test_name}`: too many rejected cases ({attempts} attempts for {} passes)",
            passed
        );
        let mut rng = StdRng::seed_from_u64(base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (desc, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{test_name}` failed for {desc}: {msg}")
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Defines property tests. Mirrors the upstream macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __desc = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let mut __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    (__desc, __case())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, ab in (0u32..10, 5i32..=9)) {
            let (a, b) = ab;
            prop_assert!(x < 100);
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..=200, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_panics_with_inputs() {
        crate::run_cases(&ProptestConfig::with_cases(4), "always_fails", |rng| {
            let x = Strategy::generate(&(0u8..=255), rng);
            (format!("x = {x:?}"), Err(TestCaseError::fail("boom")))
        });
    }
}
