//! Offline vendored deterministic RNG shim.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the `rand` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), ranged sampling
//! ([`RngExt::random_range`] / [`RngExt::random_bool`]), and Fisher–Yates
//! shuffling ([`seq::SliceRandom`]). The generator is SplitMix64 — not
//! cryptographic, but high-quality and fully reproducible from a `u64`
//! seed, which is all the experiments and property tests need.

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges a generator can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..10u32);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 32 elements left them sorted");
    }
}
