//! Offline vendored micro-benchmark harness shim.
//!
//! Provides the `criterion` API surface the workspace's `harness = false`
//! benches use — [`Criterion::benchmark_group`], [`BenchmarkId`],
//! `bench_with_input` / `bench_function`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple mean over a fixed number
//! of iterations printed to stdout; there is no statistical analysis,
//! but `cargo bench` runs end-to-end offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, &mut f);
        group.finish();
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        let mean_ns = if bencher.samples.is_empty() {
            0.0
        } else {
            bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64
        };
        println!(
            "bench {}/{label}: {:.1} ns/iter ({} samples)",
            self.name,
            mean_ns,
            bencher.samples.len()
        );
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_owned() }
    }
}

/// Times closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
