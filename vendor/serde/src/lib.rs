//! Offline vendored serialization shim.
//!
//! The build environment for this repository has no crates.io access, so
//! the workspace vendors a minimal replacement for the `serde` facade it
//! was written against. Types serialize into a JSON-shaped [`Value`] tree
//! (`Serialize::to_value`) and deserialize back out of one
//! (`Deserialize::from_value`); the sibling `serde_json` shim renders and
//! parses the tree as real JSON text. The derive macros live in
//! `vendor/serde_derive`.
//!
//! Deliberate simplifications versus real serde:
//! - No zero-copy or streaming; everything goes through [`Value`].
//! - Map keys must serialize to scalars (they are rendered as JSON object
//!   keys); scalar deserializers accept strings, so keyed maps round-trip.
//! - Non-finite floats serialize as the strings `"inf"`, `"-inf"`, `"nan"`
//!   and are accepted back by the float deserializers.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the single data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a map value, for derived struct deserializers.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => {
                Err(Error::custom(format!("expected map with field `{name}`, found {other:?}")))
            }
        }
    }

    /// Interprets the value as a sequence of exactly `n` items.
    pub fn as_seq_len(&self, n: usize, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            other => {
                Err(Error::custom(format!("expected {n}-element seq for {what}, found {other:?}")))
            }
        }
    }

    /// Renders the value as a JSON object key. Only scalars are
    /// supported; compound keys would need an escaping scheme nothing in
    /// this workspace uses.
    pub fn as_key_string(&self) -> Result<String, Error> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::Bool(b) => Ok(b.to_string()),
            Value::Int(i) => Ok(i.to_string()),
            Value::UInt(u) => Ok(u.to_string()),
            Value::Float(f) => Ok(format!("{f:?}")),
            other => Err(Error::custom(format!("unsupported map key {other:?}"))),
        }
    }

    /// Reinterprets a parsed JSON object key for keyed-map deserializers:
    /// keys always arrive as strings, so scalar deserializers get a
    /// string-flavored value back.
    pub fn from_key_string(key: &str) -> Value {
        Value::Str(key.to_owned())
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting a message on shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => s.parse().map_err(|_| Error::custom("expected bool")),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Value::Str(s) => {
                        s.parse::<u64>().map_err(|_| Error::custom("expected unsigned integer"))?
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide < 0 { Value::Int(wide) } else { Value::UInt(wide as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => {
                        i64::try_from(*u).map_err(|_| Error::custom("integer out of range"))?
                    }
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => {
                        s.parse::<i64>().map_err(|_| Error::custom("expected integer"))?
                    }
                    other => {
                        return Err(Error::custom(format!("expected integer, found {other:?}")))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = f64::from(*self);
                if f.is_finite() {
                    Value::Float(f)
                } else if f.is_nan() {
                    Value::Str("nan".to_owned())
                } else if f > 0.0 {
                    Value::Str("inf".to_owned())
                } else {
                    Value::Str("-inf".to_owned())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::Float(f) => *f,
                    Value::Int(i) => *i as f64,
                    Value::UInt(u) => *u as f64,
                    Value::Str(s) => match s.as_str() {
                        "inf" => f64::INFINITY,
                        "-inf" => f64::NEG_INFINITY,
                        "nan" => f64::NAN,
                        other => {
                            other.parse::<f64>().map_err(|_| Error::custom("expected float"))?
                        }
                    },
                    other => {
                        return Err(Error::custom(format!("expected float, found {other:?}")))
                    }
                };
                Ok(wide as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            Value::Bool(b) => Ok(b.to_string()),
            Value::Int(i) => Ok(i.to_string()),
            Value::UInt(u) => Ok(u.to_string()),
            Value::Float(f) => Ok(format!("{f:?}")),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!("expected single-char string, found {other:?}"))),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected seq, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected seq, found {other:?}"))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key =
                        k.to_value().as_key_string().expect("map keys must serialize to scalars");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::from_key_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = k.to_value().as_key_string().expect("map keys must serialize to scalars");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.as_seq_len(LEN, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(std::time::Duration::from_secs_f64)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
