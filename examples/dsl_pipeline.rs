//! The full tool pipeline: DSL text → analysis → deployment → switch
//! configs → emulated packets.
//!
//! Two programs arrive as P4-flavoured source, get merged and deployed,
//! the backend compiles per-switch configurations with piggyback
//! contracts, and the emulator proves the distributed pipeline processes
//! packets exactly like a single logical switch would.
//!
//! Run with: `cargo run --example dsl_pipeline`

use hermes::backend::{config::generate, emulator};
use hermes::core::{verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes::dataplane::parser::parse_programs;
use hermes::net::{Network, Switch};
use hermes::tdg::{merge_all, AnalysisMode, Tdg};

const SOURCE: &str = r#"
# Program 1: flow accounting — hash the 5-tuple, bump a counter.
program accounting {
    header ipv4.src: 4;
    header ipv4.dst: 4;
    header l4.sport: 2;
    header l4.dport: 2;
    metadata meta.flow_idx: 4;
    metadata meta.count: 4;

    table flow_hash {
        actions { go { meta.flow_idx = hash(ipv4.src, ipv4.dst, l4.sport, l4.dport); } }
        capacity 1;
        resource 0.6;
    }
    table flow_count {
        key { meta.flow_idx: exact; }
        actions { bump { meta.count = register(meta.flow_idx); } }
        resource 1.2;
    }
}

# Program 2: heavy-hitter policing gated on the count.
program policer {
    metadata meta.verdict: 1;

    table hh_detect {
        key { meta.count: exact; }
        actions { mark { meta.verdict = const(); } }
        resource 0.8;
    }
    table police {
        key { meta.verdict: exact; }
        actions { pass { forward(meta.verdict); } kill { drop(); } }
        resource 0.6;
    }
    gate hh_detect -> police;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the DSL into programs.
    let programs = parse_programs(SOURCE)?;
    println!("parsed {} programs: {}", programs.len(), {
        programs.iter().map(|p| p.name().to_owned()).collect::<Vec<_>>().join(", ")
    });

    // 2. Analyze: per-program TDGs, merged with metadata amounts.
    let tdgs: Vec<Tdg> =
        programs.iter().map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral)).collect();
    let tdg = merge_all(tdgs);
    println!("merged TDG: {tdg}");

    // 3. Deploy on two small switches (forcing coordination).
    let mut net = Network::new();
    let small = |name: &str| Switch { stages: 4, stage_capacity: 0.6, ..Switch::tofino(name) };
    let s1 = net.add_switch(small("edge"));
    let s2 = net.add_switch(small("core"));
    net.add_link(s1, s2, 25.0)?;
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps)?;
    assert!(verify(&tdg, &net, &plan, &eps).is_empty());
    println!(
        "deployed across {} switches, per-packet overhead {} B",
        plan.occupied_switch_count(),
        plan.max_inter_switch_bytes(&tdg)
    );

    // 4. Compile backend artifacts.
    let artifacts = generate(&tdg, &net, &plan);
    for config in artifacts.switches.values() {
        println!("  {config}");
        for (next, fields) in &config.appends {
            let names: Vec<&str> = fields.iter().map(|f| f.name()).collect();
            println!(
                "    appends -> {}: {:?} ({} B)",
                net.switch(*next).name,
                names,
                config.append_bytes(*next)
            );
        }
    }

    // 5. Emulate packets end to end and check semantic equivalence.
    let mut checked = 0;
    for seed in 0..50u64 {
        assert!(
            emulator::equivalent(&tdg, &plan, &artifacts, emulator::test_packet(seed)),
            "packet {seed} diverged"
        );
        checked += 1;
    }
    let trace = emulator::run_distributed(&tdg, &plan, &artifacts, emulator::test_packet(0));
    println!(
        "emulated {checked} packets: distributed == single-switch; max on-wire metadata {} B",
        trace.max_wire_bytes()
    );
    Ok(())
}
