//! In-band network telemetry: heavyweight metadata meets the MTU.
//!
//! INT stamps every packet with switch id (4 B), timestamps (12 B), and
//! queue lengths (6 B) — the heaviest rows of the paper's Table I. This
//! example deploys INT alongside routing and load balancing on a k=4
//! fat-tree, then pushes flows through the packet-level simulator to show
//! how the chosen deployment's byte overhead translates into flow
//! completion time and goodput.
//!
//! Run with: `cargo run --example int_telemetry`

use hermes::baselines::FirstFitByLevel;
use hermes::core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::library;
use hermes::net::topology;
use hermes::sim::testbed::{normalized_impact, TestbedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // INT plus the forwarding functions it rides on.
    let programs = vec![
        library::int_telemetry(),
        library::l3_router(),
        library::ecmp_lb(),
        library::qos_meter(),
    ];
    let tdg = ProgramAnalyzer::new().analyze(&programs);
    println!(
        "workload: INT + routing + ECMP + QoS = {} MATs, max single dependency {} B",
        tdg.node_count(),
        tdg.max_edge_bytes()
    );

    // A k=4 fat-tree of Tofino-like switches with 10 us DCN links.
    let net = topology::fat_tree(4, 10.0);
    println!("network: k=4 fat-tree, {} switches / {} links", net.switch_count(), net.link_count());

    let eps = Epsilon::loose();
    let hermes = GreedyHeuristic::new().deploy(&tdg, &net, &eps)?;
    let naive = FirstFitByLevel.deploy(&tdg, &net, &eps)?;

    // Translate each plan's byte overhead into end-to-end impact.
    let sim = TestbedConfig { packets: 20_000, ..Default::default() };
    println!("\n{:<10} {:>12} {:>10} {:>12}", "algo", "overhead (B)", "FCT x", "goodput x");
    for (name, plan) in [("Hermes", &hermes), ("first-fit", &naive)] {
        let bytes = plan.max_inter_switch_bytes(&tdg) as u32;
        let perf = normalized_impact(&sim, 1024, bytes);
        println!(
            "{:<10} {:>12} {:>10.3} {:>12.3}",
            name, bytes, perf.fct_ratio, perf.goodput_ratio
        );
    }
    assert!(
        hermes.max_inter_switch_bytes(&tdg) <= naive.max_inter_switch_bytes(&tdg),
        "Hermes never carries more telemetry bytes between switches"
    );
    Ok(())
}
