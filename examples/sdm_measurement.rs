//! Software-defined measurement: the paper's motivating scenario.
//!
//! Ten sketch algorithms must run concurrently, but together they exhaust
//! a single switch. This example shows the whole Hermes pipeline on that
//! workload: TDG merging deduplicates the 5-tuple hash every sketch
//! invokes, the heuristic splits the merged TDG across a three-switch
//! testbed, and the resulting coordination overhead is compared with the
//! overhead-oblivious baselines.
//!
//! Run with: `cargo run --example sdm_measurement`

use hermes::baselines::{FirstFitByLevel, FirstFitByLevelAndSize};
use hermes::core::{verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::library::sketches;
use hermes::net::topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs = sketches::all();
    let standalone: f64 = programs.iter().map(|p| p.total_resource()).sum();
    println!(
        "deploying {} sketches (standalone resource: {standalone:.1} stage units)",
        programs.len()
    );

    // Step 1 — program analysis (Algorithm 1): merge + annotate.
    let tdg = ProgramAnalyzer::new().analyze(&programs);
    println!(
        "merged TDG: {} MATs / {} dependencies, {:.1} units after deduplicating the shared hash",
        tdg.node_count(),
        tdg.edge_count(),
        tdg.total_resource()
    );

    // Step 2/3 — deploy on the Tofino-like 3-switch testbed.
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let algorithms: Vec<Box<dyn DeploymentAlgorithm>> = vec![
        Box::new(GreedyHeuristic::new()),
        Box::new(FirstFitByLevel),
        Box::new(FirstFitByLevelAndSize),
    ];
    println!("\n{:<8} {:>14} {:>10} {:>12}", "algo", "overhead (B)", "switches", "latency (us)");
    for algo in &algorithms {
        let plan = algo.deploy(&tdg, &net, &eps)?;
        assert!(verify(&tdg, &net, &plan, &eps).is_empty(), "{} plan invalid", algo.name());
        println!(
            "{:<8} {:>14} {:>10} {:>12.1}",
            algo.name(),
            plan.max_inter_switch_bytes(&tdg),
            plan.occupied_switch_count(),
            plan.end_to_end_latency_us()
        );
    }

    // The Exp#6 finding: deployment adds no switch logic beyond the
    // merged TDG itself.
    let hermes_plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps)?;
    let deployed: f64 = hermes_plan.placements().iter().map(|p| p.fraction).sum();
    println!(
        "\nresources: standalone {standalone:.1} -> merged {:.1} -> deployed {deployed:.1} units \
         (merging saved {:.1}, deployment added {:.2})",
        tdg.total_resource(),
        standalone - tdg.total_resource(),
        deployed - tdg.total_resource()
    );
    Ok(())
}
