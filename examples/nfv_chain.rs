//! NFV offload with service-level bounds: the ε-constraint method live.
//!
//! A chain of network functions — stateful firewall, NAT, load balancer —
//! is offloaded onto a WAN where only half the switches are programmable.
//! Administrators bound the coordination latency (ε₁) and the number of
//! occupied switches (ε₂); Hermes optimizes the byte overhead within those
//! bounds, and the exact solver certifies how close the heuristic lands.
//!
//! Run with: `cargo run --example nfv_chain`

use hermes::core::{
    verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, OptimalSolver, ProgramAnalyzer,
    SearchContext, Solver,
};
use hermes::dataplane::library;
use hermes::net::topology::{random_wan, WanConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs = vec![
        library::acl(),
        library::stateful_firewall(),
        library::nat(),
        library::tunnel(),
        library::ecmp_lb(),
    ];
    let tdg = ProgramAnalyzer::new().analyze(&programs);
    println!(
        "NF chain: ACL -> firewall -> NAT -> tunnel -> LB = {} MATs, {} dependencies",
        tdg.node_count(),
        tdg.edge_count()
    );

    let net = random_wan(40, 60, 7, &WanConfig::default());
    println!("substrate: {net}");

    // Sweep ε₂ (occupied switches) under a generous latency bound and
    // watch the overhead/footprint trade-off.
    println!("\n{:>4} {:>14} {:>10} {:>14}", "eps2", "overhead (B)", "switches", "latency (ms)");
    for eps2 in [1usize, 2, 3, 8] {
        let eps = Epsilon::new(1_000_000.0, eps2);
        match GreedyHeuristic::new().deploy(&tdg, &net, &eps) {
            Ok(plan) => {
                assert!(verify(&tdg, &net, &plan, &eps).is_empty());
                println!(
                    "{eps2:>4} {:>14} {:>10} {:>14.1}",
                    plan.max_inter_switch_bytes(&tdg),
                    plan.occupied_switch_count(),
                    plan.end_to_end_latency_us().max(0.0) / 1000.0
                );
            }
            Err(e) => println!("{eps2:>4} infeasible: {e}"),
        }
    }

    // Certify the loose-bound result against the exact solver.
    let eps = Epsilon::loose();
    let heuristic = GreedyHeuristic::new().deploy(&tdg, &net, &eps)?;
    let ctx = SearchContext::with_time_limit(Duration::from_secs(10));
    let optimal = OptimalSolver::new().solve(&tdg, &net, &eps, &ctx)?;
    println!(
        "\nloose bounds: heuristic A_max = {} B, optimal A_max = {} B ({})",
        heuristic.max_inter_switch_bytes(&tdg),
        optimal.objective,
        if optimal.proven_optimal { "proven" } else { "time-limited incumbent" }
    );
    Ok(())
}
