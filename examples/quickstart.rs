//! Quickstart: the paper's Figure 1 in code.
//!
//! Three dependent MATs — `a` passes 1 byte to `b`, `b` passes 4 bytes to
//! `c` — must be split across two switches that hold two MATs each.
//! Cutting between `a` and `b` costs 1 byte per packet; cutting between
//! `b` and `c` costs 4. Hermes finds the 1-byte cut, the overhead-oblivious
//! first-fit baseline takes whatever capacity dictates.
//!
//! Run with: `cargo run --example quickstart`

use hermes::baselines::FirstFitByLevel;
use hermes::core::{verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic};
use hermes::dataplane::action::Action;
use hermes::dataplane::fields::Field;
use hermes::dataplane::mat::{Mat, MatchKind};
use hermes::dataplane::program::Program;
use hermes::net::{Network, Switch};
use hermes::tdg::{AnalysisMode, Tdg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The program of Figure 1 -------------------------------------
    let idx = Field::metadata("meta.index", 1); // a -> b: 1 byte
    let result = Field::metadata("meta.result", 4); // b -> c: 4 bytes
    let a = Mat::builder("a")
        .action(Action::writing("compute_index", [idx.clone()]))
        .resource(0.5)
        .build()?;
    let b = Mat::builder("b")
        .match_field(idx, MatchKind::Exact)
        .action(Action::writing("update_counter", [result.clone()]))
        .resource(0.5)
        .build()?;
    let c = Mat::builder("c")
        .match_field(result, MatchKind::Exact)
        .action(Action::new("export"))
        .resource(0.5)
        .build()?;
    let program = Program::builder("figure1").table(a).table(b).table(c).build()?;

    // --- A two-switch network, two MATs per switch -------------------
    let mut net = Network::new();
    let small = |name: &str| Switch { stages: 2, stage_capacity: 0.5, ..Switch::tofino(name) };
    let s1 = net.add_switch(small("s1"));
    let s2 = net.add_switch(small("s2"));
    net.add_link(s1, s2, 10.0)?;

    // --- Analyze and deploy ------------------------------------------
    let tdg = Tdg::from_program(&program, AnalysisMode::PaperLiteral);
    println!("merged TDG: {tdg}");
    for e in tdg.edges() {
        println!(
            "  {} -> {} [{}]: {} bytes",
            tdg.node(e.from).name,
            tdg.node(e.to).name,
            e.dep,
            e.bytes
        );
    }

    let eps = Epsilon::loose();
    let hermes = GreedyHeuristic::new().deploy(&tdg, &net, &eps)?;
    let naive = FirstFitByLevel.deploy(&tdg, &net, &eps)?;

    println!("\nHermes plan:   {hermes}");
    for p in hermes.placements() {
        println!(
            "  {} -> {} stage {} ({:.0}%)",
            tdg.node(p.node).name,
            net.switch(p.switch).name,
            p.stage,
            p.fraction * 100.0
        );
    }
    assert!(verify(&tdg, &net, &hermes, &eps).is_empty());

    println!(
        "\nper-packet byte overhead: Hermes = {} B, first-fit = {} B",
        hermes.max_inter_switch_bytes(&tdg),
        naive.max_inter_switch_bytes(&tdg)
    );
    assert_eq!(hermes.max_inter_switch_bytes(&tdg), 1, "Hermes cuts the 1-byte edge");
    Ok(())
}
